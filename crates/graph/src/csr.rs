//! Compressed sparse row storage for undirected weighted graphs.
//!
//! Conventions (chosen to match the map equation of the paper's §2.2):
//!
//! * Every undirected edge `{u, v}` with `u != v` is stored as two arcs,
//!   `u→v` and `v→u`, each carrying the full edge weight.
//! * A self-loop `{u, u}` is stored as a single arc `u→u`; it counts
//!   **twice** toward [`Graph::strength`] (the usual convention that keeps
//!   `Σ_u strength(u) = 2W`), and never contributes to exit flow.
//! * Parallel edges are merged at build time by summing weights.

use std::collections::HashMap;

/// Vertex identifier. 32 bits comfortably covers the scaled experiments
/// while halving adjacency memory versus `u64`.
pub type VertexId = u32;

/// An immutable undirected weighted graph in CSR form.
#[derive(Clone, Debug, PartialEq)]
pub struct Graph {
    offsets: Vec<usize>,
    targets: Vec<VertexId>,
    weights: Vec<f64>,
    /// Number of undirected edges (self-loops count once).
    num_edges: usize,
    /// Σ weight over undirected edges, self-loops counted once.
    total_weight: f64,
    /// Per-vertex strength: Σ incident edge weights, self-loops twice.
    strengths: Vec<f64>,
}

impl Graph {
    /// Build from a list of undirected edges. Parallel edges are merged
    /// (weights summed); both `(u,v)` and `(v,u)` occurrences merge into the
    /// same edge. Panics if an endpoint is `>= num_vertices`.
    pub fn from_edges(num_vertices: usize, edges: &[(VertexId, VertexId, f64)]) -> Self {
        let mut b = GraphBuilder::new(num_vertices);
        for &(u, v, w) in edges {
            b.add_edge(u, v, w);
        }
        b.build()
    }

    /// Build from unweighted undirected edges (weight 1 each).
    pub fn from_unweighted(num_vertices: usize, edges: &[(VertexId, VertexId)]) -> Self {
        let mut b = GraphBuilder::new(num_vertices);
        for &(u, v) in edges {
            b.add_edge(u, v, 1.0);
        }
        b.build()
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges (self-loops count once).
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Total undirected edge weight `W` (self-loops once).
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Number of stored arcs at `u` (self-loop contributes one arc).
    pub fn degree(&self, u: VertexId) -> usize {
        let u = u as usize;
        self.offsets[u + 1] - self.offsets[u]
    }

    /// Weighted degree of `u` (self-loops counted twice), so that
    /// `Σ_u strength(u) == 2 * total_weight()`.
    pub fn strength(&self, u: VertexId) -> f64 {
        self.strengths[u as usize]
    }

    /// Neighbor ids of `u` (self included if `u` has a self-loop).
    pub fn neighbors(&self, u: VertexId) -> &[VertexId] {
        let u = u as usize;
        &self.targets[self.offsets[u]..self.offsets[u + 1]]
    }

    /// `(neighbor, weight)` pairs at `u`.
    pub fn arcs(&self, u: VertexId) -> impl Iterator<Item = (VertexId, f64)> + '_ {
        let u = u as usize;
        let range = self.offsets[u]..self.offsets[u + 1];
        self.targets[range.clone()]
            .iter()
            .copied()
            .zip(self.weights[range].iter().copied())
    }

    /// Weight of the self-loop at `u` (0 if none).
    pub fn self_loop(&self, u: VertexId) -> f64 {
        self.arcs(u).filter(|&(v, _)| v == u).map(|(_, w)| w).sum()
    }

    /// All undirected edges `(u, v, w)` with `u <= v`, in vertex order.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId, f64)> + '_ {
        (0..self.num_vertices() as VertexId).flat_map(move |u| {
            self.arcs(u)
                .filter(move |&(v, _)| u <= v)
                .map(move |(v, w)| (u, v, w))
        })
    }

    /// Vertex ids sorted by decreasing degree (hubs first).
    pub fn by_degree_desc(&self) -> Vec<VertexId> {
        let mut ids: Vec<VertexId> = (0..self.num_vertices() as VertexId).collect();
        ids.sort_by_key(|&u| std::cmp::Reverse(self.degree(u)));
        ids
    }

    /// Maximum vertex degree (arc count).
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices() as VertexId)
            .map(|u| self.degree(u))
            .max()
            .unwrap_or(0)
    }

    /// Connected components; returns (component id per vertex, count).
    pub fn components(&self) -> (Vec<u32>, usize) {
        let n = self.num_vertices();
        let mut comp = vec![u32::MAX; n];
        let mut count = 0;
        let mut stack = Vec::new();
        for start in 0..n {
            if comp[start] != u32::MAX {
                continue;
            }
            comp[start] = count;
            stack.push(start as VertexId);
            while let Some(u) = stack.pop() {
                for &v in self.neighbors(u) {
                    if comp[v as usize] == u32::MAX {
                        comp[v as usize] = count;
                        stack.push(v);
                    }
                }
            }
            count += 1;
        }
        (comp, count as usize)
    }

    /// Induced subgraph on `keep` (ids relabeled to 0..keep.len() in the
    /// order given). Returns the subgraph and the old→new id map as a
    /// `Vec` sorted by old id, so callers that iterate the remap see a
    /// canonical order (R2 hygiene — a `HashMap` return would hand them
    /// nondeterministic iteration for free).
    pub fn subgraph(&self, keep: &[VertexId]) -> (Graph, Vec<(VertexId, VertexId)>) {
        let lookup: HashMap<VertexId, VertexId> = keep
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, new as VertexId))
            .collect();
        let mut b = GraphBuilder::new(keep.len());
        for &old_u in keep {
            let new_u = lookup[&old_u];
            for (old_v, w) in self.arcs(old_u) {
                if let Some(&new_v) = lookup.get(&old_v) {
                    if new_u <= new_v {
                        b.add_edge(new_u, new_v, w);
                    }
                }
            }
        }
        let mut remap: Vec<(VertexId, VertexId)> = lookup.into_iter().collect();
        remap.sort_unstable_by_key(|&(old, _)| old);
        (b.build(), remap)
    }

    /// Reassemble a graph from raw CSR arrays, used by the snapshot
    /// loader. Callers guarantee the arrays came from a valid CSR (the
    /// snapshot codec checksums reject torn files before this runs);
    /// structural invariants are still asserted.
    pub(crate) fn from_csr_parts(
        offsets: Vec<usize>,
        targets: Vec<VertexId>,
        weights: Vec<f64>,
        num_edges: usize,
        total_weight: f64,
        strengths: Vec<f64>,
    ) -> Self {
        assert!(!offsets.is_empty(), "offsets must hold n+1 entries");
        assert_eq!(offsets[0], 0, "offsets must start at 0");
        assert_eq!(
            *offsets.last().unwrap(),
            targets.len(),
            "offsets must end at the arc count"
        );
        assert_eq!(targets.len(), weights.len());
        assert_eq!(strengths.len(), offsets.len() - 1);
        Graph {
            offsets,
            targets,
            weights,
            num_edges,
            total_weight,
            strengths,
        }
    }
}

/// Incremental builder that merges parallel edges.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: HashMap<(VertexId, VertexId), f64>,
}

impl GraphBuilder {
    /// A builder for a graph on `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        GraphBuilder {
            num_vertices,
            edges: HashMap::new(),
        }
    }

    /// Grow the vertex count to at least `n`. Lets streaming loaders add
    /// edges as vertex ids are discovered instead of materializing the
    /// whole edge list first to count vertices.
    pub fn ensure_vertices(&mut self, n: usize) {
        if n > self.num_vertices {
            self.num_vertices = n;
        }
    }

    /// Add (or merge into) the undirected edge `{u, v}` with weight `w`.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, w: f64) {
        assert!(
            (u as usize) < self.num_vertices && (v as usize) < self.num_vertices,
            "edge ({u},{v}) out of range for {} vertices",
            self.num_vertices
        );
        assert!(
            w >= 0.0 && w.is_finite(),
            "edge weight must be finite and non-negative"
        );
        let key = if u <= v { (u, v) } else { (v, u) };
        *self.edges.entry(key).or_insert(0.0) += w;
    }

    /// Number of distinct undirected edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalize into CSR form.
    pub fn build(self) -> Graph {
        let n = self.num_vertices;
        let mut deg = vec![0usize; n];
        for &(u, v) in self.edges.keys() {
            deg[u as usize] += 1;
            if u != v {
                deg[v as usize] += 1;
            }
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        for d in &deg {
            offsets.push(offsets.last().unwrap() + d);
        }
        let num_arcs = *offsets.last().unwrap();
        let mut targets = vec![0 as VertexId; num_arcs];
        let mut weights = vec![0.0; num_arcs];
        let mut cursor = offsets[..n].to_vec();
        let mut total_weight = 0.0;
        let mut strengths = vec![0.0; n];

        // Deterministic arc order: sort edges before placement.
        let mut edges: Vec<((VertexId, VertexId), f64)> = self.edges.into_iter().collect();
        edges.sort_by_key(|&((u, v), _)| (u, v));

        for ((u, v), w) in edges {
            total_weight += w;
            targets[cursor[u as usize]] = v;
            weights[cursor[u as usize]] = w;
            cursor[u as usize] += 1;
            if u != v {
                targets[cursor[v as usize]] = u;
                weights[cursor[v as usize]] = w;
                cursor[v as usize] += 1;
                strengths[u as usize] += w;
                strengths[v as usize] += w;
            } else {
                strengths[u as usize] += 2.0 * w;
            }
        }
        let num_edges = offsets.windows(2).map(|w| w[1] - w[0]).sum::<usize>();
        // num_arcs counts self-loops once and other edges twice.
        let self_loops = {
            let mut c = 0usize;
            for u in 0..n {
                for &t in &targets[offsets[u]..offsets[u + 1]] {
                    if t as usize == u {
                        c += 1;
                    }
                }
            }
            c
        };
        let undirected = (num_edges - self_loops) / 2 + self_loops;

        Graph {
            offsets,
            targets,
            weights,
            num_edges: undirected,
            total_weight,
            strengths,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_unweighted(3, &[(0, 1), (1, 2), (0, 2)])
    }

    #[test]
    fn triangle_basics() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.total_weight(), 3.0);
        for u in 0..3 {
            assert_eq!(g.degree(u), 2);
            assert_eq!(g.strength(u), 2.0);
        }
        assert_eq!(g.neighbors(0), &[1, 2]);
    }

    #[test]
    fn parallel_edges_merge() {
        let g = Graph::from_edges(2, &[(0, 1, 1.0), (1, 0, 2.5)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.total_weight(), 3.5);
        assert_eq!(g.strength(0), 3.5);
    }

    #[test]
    fn self_loop_conventions() {
        let g = Graph::from_edges(2, &[(0, 0, 2.0), (0, 1, 1.0)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.total_weight(), 3.0);
        // Self-loop counts twice in strength: 2*2 + 1 = 5.
        assert_eq!(g.strength(0), 5.0);
        assert_eq!(g.strength(1), 1.0);
        assert_eq!(g.self_loop(0), 2.0);
        assert_eq!(g.self_loop(1), 0.0);
        // Σ strengths == 2W.
        assert_eq!(g.strength(0) + g.strength(1), 2.0 * g.total_weight());
    }

    #[test]
    fn edges_iterator_lists_each_edge_once() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0)]);
    }

    #[test]
    fn components_of_disconnected_graph() {
        let g = Graph::from_unweighted(5, &[(0, 1), (2, 3)]);
        let (comp, count) = g.components();
        assert_eq!(count, 3);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
        assert_ne!(comp[4], comp[0]);
        assert_ne!(comp[4], comp[2]);
    }

    #[test]
    fn subgraph_relabels_and_keeps_internal_edges() {
        let g = Graph::from_unweighted(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let (sub, remap) = g.subgraph(&[1, 2, 3]);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 2); // 1-2, 2-3 survive
                                        // Remap is sorted by old id.
        assert_eq!(remap, vec![(1, 0), (2, 1), (3, 2)]);
    }

    #[test]
    fn by_degree_desc_puts_hub_first() {
        let g = Graph::from_unweighted(5, &[(0, 1), (0, 2), (0, 3), (0, 4), (1, 2)]);
        assert_eq!(g.by_degree_desc()[0], 0);
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        Graph::from_unweighted(2, &[(0, 2)]);
    }
}
