//! Edge-list IO.
//!
//! Format: one edge per line, `u v [w]`, whitespace separated; `#` or `%`
//! lines are comments (both SNAP and KONECT conventions). Vertex ids are
//! arbitrary `u64`s on disk and are densely relabeled on read; the mapping
//! is returned so results can be reported in original ids.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::csr::{Graph, GraphBuilder, VertexId};

/// Errors the readers can produce.
#[derive(Debug)]
pub enum IoError {
    Io(std::io::Error),
    Parse { line: usize, content: String },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse { line, content } => {
                write!(f, "parse error on line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Result of reading an edge list: the graph plus the original ids, indexed
/// by the dense ids used in the graph.
pub struct LoadedGraph {
    pub graph: Graph,
    /// `original_ids[dense] = id as written in the file`.
    pub original_ids: Vec<u64>,
}

/// Read a whitespace edge list from any reader.
///
/// Edges stream straight into the [`GraphBuilder`] as they are parsed —
/// the full edge list is never materialized, which roughly halves peak
/// RSS on large inputs. Dense ids are still assigned by first appearance
/// in file order, so the relabeling (and therefore every downstream
/// trajectory) is bit-identical to the buffered reader this replaces.
pub fn read_edge_list<R: Read>(reader: R) -> Result<LoadedGraph, IoError> {
    let reader = BufReader::new(reader);
    let mut remap: HashMap<u64, VertexId> = HashMap::new();
    let mut original_ids: Vec<u64> = Vec::new();
    let mut builder = GraphBuilder::new(0);
    let mut line_buf = String::new();
    let mut line_no = 0usize;
    let mut reader = reader;
    loop {
        line_buf.clear();
        line_no += 1;
        if reader.read_line(&mut line_buf)? == 0 {
            break;
        }
        let line = line_buf.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let parse_err = || IoError::Parse {
            line: line_no,
            content: line.to_string(),
        };
        let u: u64 = parts
            .next()
            .ok_or_else(parse_err)?
            .parse()
            .map_err(|_| parse_err())?;
        let v: u64 = parts
            .next()
            .ok_or_else(parse_err)?
            .parse()
            .map_err(|_| parse_err())?;
        let w: f64 = match parts.next() {
            Some(tok) => tok.parse().map_err(|_| parse_err())?,
            None => 1.0,
        };
        let mut dense = |orig: u64| -> VertexId {
            *remap.entry(orig).or_insert_with(|| {
                original_ids.push(orig);
                (original_ids.len() - 1) as VertexId
            })
        };
        let du = dense(u);
        let dv = dense(v);
        builder.ensure_vertices(original_ids.len());
        builder.add_edge(du, dv, w);
    }
    Ok(LoadedGraph {
        graph: builder.build(),
        original_ids,
    })
}

/// Read an edge list from a file path.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<LoadedGraph, IoError> {
    read_edge_list(std::fs::File::open(path)?)
}

/// Write a graph as a whitespace edge list (each undirected edge once).
/// Weights are written only when not 1.0.
pub fn write_edge_list<W: Write>(graph: &Graph, writer: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# vertices {} edges {}",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for (u, v, weight) in graph.edges() {
        if weight == 1.0 {
            writeln!(w, "{u} {v}")?;
        } else {
            writeln!(w, "{u} {v} {weight}")?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Write a graph to a file path.
pub fn write_edge_list_file<P: AsRef<Path>>(graph: &Graph, path: P) -> Result<(), IoError> {
    write_edge_list(graph, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_basic_edge_list_with_comments() {
        let text = "# a comment\n% another\n10 20\n20 30 2.5\n\n10 30\n";
        let loaded = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(loaded.graph.num_vertices(), 3);
        assert_eq!(loaded.graph.num_edges(), 3);
        assert_eq!(loaded.original_ids, vec![10, 20, 30]);
        assert_eq!(loaded.graph.total_weight(), 1.0 + 2.5 + 1.0);
    }

    #[test]
    fn parse_error_reports_line() {
        let text = "1 2\nnot numbers\n";
        match read_edge_list(text.as_bytes()) {
            Err(IoError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}", other = other.err()),
        }
    }

    #[test]
    fn roundtrip_preserves_graph() {
        let g = crate::generators::erdos_renyi(40, 80, 3);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let loaded = read_edge_list(&buf[..]).unwrap();
        assert_eq!(loaded.graph.num_edges(), g.num_edges());
        // Edge lists cannot represent isolated vertices, so the vertex count
        // may shrink but never grow.
        assert!(loaded.graph.num_vertices() <= g.num_vertices());
        assert_eq!(loaded.graph.total_weight(), g.total_weight());
    }

    #[test]
    fn weighted_roundtrip() {
        let g = Graph::from_edges(3, &[(0, 1, 2.0), (1, 2, 0.5)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let loaded = read_edge_list(&buf[..]).unwrap();
        assert_eq!(loaded.graph.total_weight(), 2.5);
    }
}
