//! Binary CSR snapshots: an on-disk graph format with eager and
//! demand-paged loaders, plus per-rank shards for out-of-core runs.
//!
//! ## Format (version 1, all integers little-endian)
//!
//! ```text
//! magic            b"DINFSNAP"                      8 bytes
//! version          u32                              = 1
//! kind             u32                              0 = full, 1 = shard
//! rank             u64                              owning rank (0 for full)
//! nranks           u64                              world size (1 for full)
//! global_vertices  u64
//! rows             u64   local row count (== global_vertices when full)
//! arcs             u64   stored arc count
//! global_edges     u64   global undirected edge count
//! global_weight    u64   IEEE-754 bits of the global total weight W
//! offsets          (rows+1) × u64   CSR row offsets into the arc arrays
//! targets          arcs × u32       global target vertex ids
//! weights          arcs × u64       IEEE-754 bits per arc
//! strengths        rows × u64       IEEE-754 bits per row
//! checksum         u64   FNV-1a over every preceding byte
//! ```
//!
//! The framing discipline mirrors the checkpoint store (DESIGN.md §6.11):
//! magic + version gate, length-exact sections, a trailing checksum that
//! rejects torn or bit-flipped files with named errors, and atomic
//! tmp+rename writes. Floats travel as bit patterns so a loaded graph is
//! *the same bits* the writer held — the paged and eager loaders are
//! bit-identical by construction, which the clustering equivalence gates
//! then assert end to end.
//!
//! A *shard* for rank `r` of `p` holds the adjacency rows of the
//! round-robin-owned vertices `{v : v mod p == r}` in ascending order
//! (row `i` is global vertex `r + i·p`), with targets kept as global ids
//! and the global totals baked into every shard header. Rank `r` can
//! therefore partition and cluster from its shard alone plus collectives
//! over scalar summaries (degrees, strengths) — it never needs the global
//! graph in memory.
//!
//! [`PagedGraph`] reads fixed-size blocks through a seek+read LRU cache —
//! no mmap, so `#![forbid(unsafe_code)]` stays intact. Blocks are
//! addressed per section and the block size must be a multiple of 8, so a
//! typed element never straddles two blocks.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fs::File;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::csr::{Graph, VertexId};
use crate::store::GraphStore;

/// File magic: "DINF" + snapshot discriminator.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"DINFSNAP";

/// Current format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Fixed byte length of the header (magic through `global_weight`).
pub const HEADER_BYTES: u64 = 72;

/// Checksum trailer length.
pub const CHECKSUM_BYTES: u64 = 8;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    let mut h = hash;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// What a snapshot file claims to hold.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SnapshotKind {
    /// The whole graph (one shard of a world of 1).
    Full,
    /// One rank's rows of a sharded graph.
    Shard,
}

/// Decoded snapshot header.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SnapshotHeader {
    pub kind: SnapshotKind,
    /// Owning rank (0 for full snapshots).
    pub rank: usize,
    /// World size the shard was written for (1 for full snapshots).
    pub nranks: usize,
    /// Global vertex count.
    pub global_vertices: usize,
    /// Local row count: vertices stored in this file.
    pub rows: usize,
    /// Stored arc count.
    pub arcs: usize,
    /// Global undirected edge count (self-loops once).
    pub global_edges: usize,
    /// Global total undirected edge weight `W` (self-loops once).
    pub global_weight: f64,
}

impl SnapshotHeader {
    /// Global vertex id of local row `i`.
    pub fn vertex_of_row(&self, row: usize) -> VertexId {
        (self.rank + row * self.nranks) as VertexId
    }

    /// Local row of global vertex `v`. Panics if `v` is not local.
    pub fn row_of_vertex(&self, v: VertexId) -> usize {
        let v = v as usize;
        assert_eq!(
            v % self.nranks,
            self.rank,
            "vertex {v} is not local to shard rank {} of {}",
            self.rank,
            self.nranks
        );
        (v - self.rank) / self.nranks
    }

    fn encode(&self) -> [u8; HEADER_BYTES as usize] {
        let mut out = [0u8; HEADER_BYTES as usize];
        out[0..8].copy_from_slice(&SNAPSHOT_MAGIC);
        out[8..12].copy_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        let kind: u32 = match self.kind {
            SnapshotKind::Full => 0,
            SnapshotKind::Shard => 1,
        };
        out[12..16].copy_from_slice(&kind.to_le_bytes());
        out[16..24].copy_from_slice(&(self.rank as u64).to_le_bytes());
        out[24..32].copy_from_slice(&(self.nranks as u64).to_le_bytes());
        out[32..40].copy_from_slice(&(self.global_vertices as u64).to_le_bytes());
        out[40..48].copy_from_slice(&(self.rows as u64).to_le_bytes());
        out[48..56].copy_from_slice(&(self.arcs as u64).to_le_bytes());
        out[56..64].copy_from_slice(&(self.global_edges as u64).to_le_bytes());
        out[64..72].copy_from_slice(&self.global_weight.to_bits().to_le_bytes());
        out
    }

    fn decode(buf: &[u8]) -> Result<Self, SnapshotError> {
        if buf.len() < HEADER_BYTES as usize {
            return Err(SnapshotError::Truncated { context: "header" });
        }
        if buf[0..8] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let u32_at = |at: usize| u32::from_le_bytes(buf[at..at + 4].try_into().unwrap());
        let u64_at = |at: usize| u64::from_le_bytes(buf[at..at + 8].try_into().unwrap());
        let version = u32_at(8);
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::BadVersion { found: version });
        }
        let kind = match u32_at(12) {
            0 => SnapshotKind::Full,
            1 => SnapshotKind::Shard,
            _ => {
                return Err(SnapshotError::Malformed {
                    context: "unknown snapshot kind",
                })
            }
        };
        let header = SnapshotHeader {
            kind,
            rank: u64_at(16) as usize,
            nranks: u64_at(24) as usize,
            global_vertices: u64_at(32) as usize,
            rows: u64_at(40) as usize,
            arcs: u64_at(48) as usize,
            global_edges: u64_at(56) as usize,
            global_weight: f64::from_bits(u64_at(64)),
        };
        if header.nranks == 0 || header.rank >= header.nranks {
            return Err(SnapshotError::Malformed {
                context: "rank outside world",
            });
        }
        if header.kind == SnapshotKind::Full
            && (header.nranks != 1 || header.rows != header.global_vertices)
        {
            return Err(SnapshotError::Malformed {
                context: "full snapshot must hold every row",
            });
        }
        if header.rows != owned_row_count(header.global_vertices, header.nranks, header.rank) {
            return Err(SnapshotError::Malformed {
                context: "row count disagrees with round-robin ownership",
            });
        }
        Ok(header)
    }

    /// Byte length of each section, in file order.
    fn section_bytes(&self) -> [u64; 4] {
        [
            (self.rows as u64 + 1) * 8,
            self.arcs as u64 * 4,
            self.arcs as u64 * 8,
            self.rows as u64 * 8,
        ]
    }

    /// Total file length implied by the header.
    fn file_bytes(&self) -> u64 {
        HEADER_BYTES + self.section_bytes().iter().sum::<u64>() + CHECKSUM_BYTES
    }
}

/// Number of round-robin-owned vertices of rank `r` in a world of `p`.
pub fn owned_row_count(global_vertices: usize, nranks: usize, rank: usize) -> usize {
    if rank >= global_vertices {
        return 0;
    }
    (global_vertices - rank).div_ceil(nranks)
}

/// Everything that can go wrong reading or writing a snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// Unknown format version.
    BadVersion { found: u32 },
    /// The file ends before the named region is complete.
    Truncated { context: &'static str },
    /// The trailing FNV-1a checksum disagrees with the content.
    ChecksumMismatch,
    /// Structurally invalid content (bad kind, inconsistent counts,
    /// out-of-range offsets…).
    Malformed { context: &'static str },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::BadVersion { found } => {
                write!(f, "unsupported snapshot version {found}")
            }
            SnapshotError::Truncated { context } => {
                write!(f, "snapshot truncated at {context}")
            }
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::Malformed { context } => write!(f, "malformed snapshot: {context}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// `Write` adapter that folds everything written into an FNV-1a hash.
struct HashingWriter<W: Write> {
    inner: W,
    hash: u64,
}

impl<W: Write> HashingWriter<W> {
    fn new(inner: W) -> Self {
        HashingWriter {
            inner,
            hash: FNV_OFFSET,
        }
    }
}

impl<W: Write> Write for HashingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.hash = fnv1a(self.hash, &buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Identity and global totals of a shard file about to be written.
#[derive(Clone, Copy, Debug)]
pub struct ShardSpec {
    pub rank: usize,
    pub nranks: usize,
    pub global_vertices: usize,
    pub global_edges: usize,
    pub global_weight: f64,
}

/// Conventional file name of rank `rank`'s shard inside a shard dir.
pub fn shard_path(dir: &Path, rank: usize) -> PathBuf {
    dir.join(format!("shard-{rank}.snap"))
}

/// Write one shard (or, with `nranks == 1`, a full snapshot) from raw row
/// arrays. `offsets` has `rows + 1` entries; `targets`/`weights` hold the
/// arcs of row `i` at `offsets[i]..offsets[i+1]` in CSR order; targets
/// are global ids. Atomic: written to a tmp file and renamed into place.
pub fn write_shard_parts(
    path: &Path,
    spec: &ShardSpec,
    offsets: &[u64],
    targets: &[VertexId],
    weights: &[f64],
    strengths: &[f64],
) -> Result<(), SnapshotError> {
    assert!(spec.nranks > 0 && spec.rank < spec.nranks, "rank in world");
    assert!(
        spec.global_vertices <= u32::MAX as usize,
        "snapshot vertex ids are u32"
    );
    let rows = strengths.len();
    assert_eq!(offsets.len(), rows + 1, "offsets hold rows+1 entries");
    assert_eq!(targets.len(), weights.len());
    assert_eq!(*offsets.last().unwrap_or(&0) as usize, targets.len());
    let header = SnapshotHeader {
        kind: if spec.nranks == 1 {
            SnapshotKind::Full
        } else {
            SnapshotKind::Shard
        },
        rank: spec.rank,
        nranks: spec.nranks,
        global_vertices: spec.global_vertices,
        rows,
        arcs: targets.len(),
        global_edges: spec.global_edges,
        global_weight: spec.global_weight,
    };

    let tmp = path.with_extension("snap.tmp");
    {
        let file = File::create(&tmp)?;
        let mut w = HashingWriter::new(BufWriter::new(file));
        w.write_all(&header.encode())?;
        for &off in offsets {
            w.write_all(&off.to_le_bytes())?;
        }
        for &t in targets {
            w.write_all(&t.to_le_bytes())?;
        }
        for &wt in weights {
            w.write_all(&wt.to_bits().to_le_bytes())?;
        }
        for &s in strengths {
            w.write_all(&s.to_bits().to_le_bytes())?;
        }
        let checksum = w.hash;
        w.write_all(&checksum.to_le_bytes())?;
        w.flush()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// The four CSR section arrays of one shard: row offsets, arc targets,
/// arc weights, per-row strengths.
type ShardRows = (Vec<u64>, Vec<VertexId>, Vec<f64>, Vec<f64>);

/// Row arrays of rank `rank`'s shard of an in-memory graph.
fn shard_rows_of_graph(graph: &Graph, nranks: usize, rank: usize) -> ShardRows {
    let n = graph.num_vertices();
    let rows = owned_row_count(n, nranks, rank);
    let mut offsets = Vec::with_capacity(rows + 1);
    let mut targets = Vec::new();
    let mut weights = Vec::new();
    let mut strengths = Vec::with_capacity(rows);
    offsets.push(0u64);
    let mut v = rank;
    while v < n {
        let u = v as VertexId;
        for (t, w) in graph.arcs(u) {
            targets.push(t);
            weights.push(w);
        }
        offsets.push(targets.len() as u64);
        strengths.push(graph.strength(u));
        v += nranks;
    }
    (offsets, targets, weights, strengths)
}

/// Write the whole graph as one full snapshot file.
pub fn write_snapshot(graph: &Graph, path: &Path) -> Result<(), SnapshotError> {
    let (offsets, targets, weights, strengths) = shard_rows_of_graph(graph, 1, 0);
    write_shard_parts(
        path,
        &ShardSpec {
            rank: 0,
            nranks: 1,
            global_vertices: graph.num_vertices(),
            global_edges: graph.num_edges(),
            global_weight: graph.total_weight(),
        },
        &offsets,
        &targets,
        &weights,
        &strengths,
    )
}

/// Shard an in-memory graph into `nranks` per-rank snapshot files under
/// `dir` (created if missing). Returns the shard paths in rank order.
pub fn write_shards(
    graph: &Graph,
    nranks: usize,
    dir: &Path,
) -> Result<Vec<PathBuf>, SnapshotError> {
    assert!(nranks > 0, "need at least one shard");
    std::fs::create_dir_all(dir)?;
    let mut paths = Vec::with_capacity(nranks);
    for rank in 0..nranks {
        let (offsets, targets, weights, strengths) = shard_rows_of_graph(graph, nranks, rank);
        let path = shard_path(dir, rank);
        write_shard_parts(
            &path,
            &ShardSpec {
                rank,
                nranks,
                global_vertices: graph.num_vertices(),
                global_edges: graph.num_edges(),
                global_weight: graph.total_weight(),
            },
            &offsets,
            &targets,
            &weights,
            &strengths,
        )?;
        paths.push(path);
    }
    Ok(paths)
}

/// A bounded-memory edge sink that turns a *stream* of undirected edges
/// into per-rank snapshot shards without ever materializing the global
/// graph.
///
/// [`ShardSink::edge`] appends each edge's two directed arc records to the
/// owning ranks' spill files through fixed-size write buffers, so the
/// resident footprint during emission is `O(nranks)` buffers regardless of
/// edge count. [`ShardSink::finalize`] then processes one shard at a time:
/// sort its spill records by `(src, dst)`, merge parallel arcs by summing
/// weights (the exact [`crate::csr::GraphBuilder`] convention, so a
/// 1-shard sink reproduces the builder's CSR bit for bit), and write the
/// shard file. Peak finalize memory is the largest single shard — the
/// whole point of sharded generation.
///
/// Global totals need the merged arc counts of *every* shard before any
/// header can be written, so finalize makes two sweeps over the spill
/// files: a counting sweep for `(global_edges, global_weight)`, then the
/// writing sweep. Spill files are deleted on success.
pub struct ShardSink {
    dir: PathBuf,
    nranks: usize,
    global_vertices: usize,
    spills: Vec<BufWriter<File>>,
    emitted_weight: f64,
}

/// Spill record layout: `src u32 | dst u32 | weight-bits u64`, LE.
const SPILL_RECORD_BYTES: usize = 16;

impl ShardSink {
    /// Create a sink writing `nranks` shards for a graph of
    /// `global_vertices` vertices under `dir` (created if missing).
    pub fn create(
        dir: &Path,
        nranks: usize,
        global_vertices: usize,
    ) -> Result<Self, SnapshotError> {
        assert!(nranks > 0, "need at least one shard");
        assert!(
            global_vertices <= u32::MAX as usize,
            "snapshot vertex ids are u32"
        );
        std::fs::create_dir_all(dir)?;
        let spills = (0..nranks)
            .map(|r| Ok(BufWriter::new(File::create(Self::spill_path(dir, r))?)))
            .collect::<Result<Vec<_>, SnapshotError>>()?;
        Ok(ShardSink {
            dir: dir.to_path_buf(),
            nranks,
            global_vertices,
            spills,
            emitted_weight: 0.0,
        })
    }

    fn spill_path(dir: &Path, rank: usize) -> PathBuf {
        dir.join(format!("shard-{rank}.spill"))
    }

    /// Record the undirected edge `{u, v}` with weight `w`. Parallel
    /// emissions merge at finalize by summing weights; a self-loop is
    /// stored once, like the in-memory builder.
    pub fn edge(&mut self, u: VertexId, v: VertexId, w: f64) -> Result<(), SnapshotError> {
        debug_assert!((u as usize) < self.global_vertices);
        debug_assert!((v as usize) < self.global_vertices);
        self.emitted_weight += w;
        self.write_arc(u, v, w)?;
        if u != v {
            self.write_arc(v, u, w)?;
        }
        Ok(())
    }

    fn write_arc(&mut self, src: VertexId, dst: VertexId, w: f64) -> Result<(), SnapshotError> {
        let spill = &mut self.spills[src as usize % self.nranks];
        spill.write_all(&src.to_le_bytes())?;
        spill.write_all(&dst.to_le_bytes())?;
        spill.write_all(&w.to_bits().to_le_bytes())?;
        Ok(())
    }

    /// Load one spill file and merge it into sorted per-row CSR parts.
    fn merged_shard(&self, rank: usize) -> Result<ShardRows, SnapshotError> {
        let bytes = std::fs::read(Self::spill_path(&self.dir, rank))?;
        if bytes.len() % SPILL_RECORD_BYTES != 0 {
            return Err(SnapshotError::Malformed {
                context: "torn spill record",
            });
        }
        let mut records: Vec<(VertexId, VertexId, f64)> = bytes
            .chunks_exact(SPILL_RECORD_BYTES)
            .map(|c| {
                (
                    u32::from_le_bytes(c[0..4].try_into().unwrap()),
                    u32::from_le_bytes(c[4..8].try_into().unwrap()),
                    f64::from_bits(u64::from_le_bytes(c[8..16].try_into().unwrap())),
                )
            })
            .collect();
        drop(bytes);
        records.sort_unstable_by_key(|&(s, d, _)| (s, d));

        let n = self.global_vertices;
        let rows = owned_row_count(n, self.nranks, rank);
        let mut offsets = Vec::with_capacity(rows + 1);
        let mut targets: Vec<VertexId> = Vec::new();
        let mut weights: Vec<f64> = Vec::new();
        let mut strengths = Vec::with_capacity(rows);
        offsets.push(0u64);
        let mut it = records.into_iter().peekable();
        for row in 0..rows {
            let v = (rank + row * self.nranks) as VertexId;
            let mut strength = 0.0;
            while let Some(&(s, d, _)) = it.peek() {
                if s != v {
                    break;
                }
                let mut w = 0.0;
                while let Some(&(s2, d2, w2)) = it.peek() {
                    if s2 != s || d2 != d {
                        break;
                    }
                    w += w2;
                    it.next();
                }
                targets.push(d);
                weights.push(w);
                strength += if d == v { 2.0 * w } else { w };
            }
            offsets.push(targets.len() as u64);
            strengths.push(strength);
        }
        assert!(it.peek().is_none(), "spill record for a foreign row");
        Ok((offsets, targets, weights, strengths))
    }

    /// Merge every spill file and write the shard set. Returns the shard
    /// paths in rank order.
    pub fn finalize(mut self) -> Result<Vec<PathBuf>, SnapshotError> {
        for spill in &mut self.spills {
            spill.flush()?;
        }
        self.spills.clear();

        // Counting sweep: the headers need the *merged* global arc totals,
        // which exist only after every shard's dedup — so shards merge
        // twice, trading CPU for the bounded-memory guarantee.
        let mut counted_arcs = 0usize;
        let mut counted_self = 0usize;
        for rank in 0..self.nranks {
            let (offsets, targets, _, strengths) = self.merged_shard(rank)?;
            counted_arcs += targets.len();
            for row in 0..strengths.len() {
                let v = (rank + row * self.nranks) as VertexId;
                counted_self += targets[offsets[row] as usize..offsets[row + 1] as usize]
                    .iter()
                    .filter(|&&t| t == v)
                    .count();
            }
        }
        let global_edges = (counted_arcs - counted_self) / 2 + counted_self;

        // Writing sweep.
        let mut paths = Vec::with_capacity(self.nranks);
        for rank in 0..self.nranks {
            let (offsets, targets, weights, strengths) = self.merged_shard(rank)?;
            let path = shard_path(&self.dir, rank);
            write_shard_parts(
                &path,
                &ShardSpec {
                    rank,
                    nranks: self.nranks,
                    global_vertices: self.global_vertices,
                    global_edges,
                    global_weight: self.emitted_weight,
                },
                &offsets,
                &targets,
                &weights,
                &strengths,
            )?;
            paths.push(path);
        }
        for rank in 0..self.nranks {
            let _ = std::fs::remove_file(Self::spill_path(&self.dir, rank));
        }
        Ok(paths)
    }
}

/// Read and validate only the header of a snapshot file (magic, version,
/// structural sanity, and that the file length matches the header's
/// claim). Cheap — used by the launcher to validate a shard dir without
/// streaming every byte on the supervisor.
pub fn read_header(path: &Path) -> Result<SnapshotHeader, SnapshotError> {
    let mut file = File::open(path)?;
    let mut buf = [0u8; HEADER_BYTES as usize];
    let mut got = 0;
    while got < buf.len() {
        let n = file.read(&mut buf[got..])?;
        if n == 0 {
            return Err(SnapshotError::Truncated { context: "header" });
        }
        got += n;
    }
    let header = SnapshotHeader::decode(&buf)?;
    let len = file.metadata()?.len();
    if len < header.file_bytes() {
        return Err(SnapshotError::Truncated {
            context: "sections",
        });
    }
    if len > header.file_bytes() {
        return Err(SnapshotError::Malformed {
            context: "trailing bytes after checksum",
        });
    }
    Ok(header)
}

/// An eagerly loaded snapshot: all sections in memory, checksum verified.
#[derive(Clone, Debug, PartialEq)]
pub struct EagerSnapshot {
    header: SnapshotHeader,
    offsets: Vec<u64>,
    targets: Vec<VertexId>,
    weights: Vec<f64>,
    strengths: Vec<f64>,
}

impl EagerSnapshot {
    /// Load and fully verify a snapshot or shard file.
    pub fn read(path: &Path) -> Result<Self, SnapshotError> {
        let bytes = std::fs::read(path)?;
        if bytes.len() < (HEADER_BYTES + CHECKSUM_BYTES) as usize {
            return Err(SnapshotError::Truncated { context: "header" });
        }
        let header = SnapshotHeader::decode(&bytes)?;
        let expect = header.file_bytes();
        if (bytes.len() as u64) < expect {
            return Err(SnapshotError::Truncated {
                context: "sections",
            });
        }
        if bytes.len() as u64 > expect {
            return Err(SnapshotError::Malformed {
                context: "trailing bytes after checksum",
            });
        }
        let body = &bytes[..bytes.len() - CHECKSUM_BYTES as usize];
        let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
        if fnv1a(FNV_OFFSET, body) != stored {
            return Err(SnapshotError::ChecksumMismatch);
        }

        let mut at = HEADER_BYTES as usize;
        let mut take_u64s = |count: usize| {
            let s = &bytes[at..at + count * 8];
            at += count * 8;
            s.chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                .collect::<Vec<u64>>()
        };
        let offsets = take_u64s(header.rows + 1);
        let targets: Vec<VertexId> = {
            let s = &bytes[at..at + header.arcs * 4];
            at += header.arcs * 4;
            s.chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                .collect()
        };
        let mut take_f64s = |count: usize| {
            let s = &bytes[at..at + count * 8];
            at += count * 8;
            s.chunks_exact(8)
                .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap())))
                .collect::<Vec<f64>>()
        };
        let weights = take_f64s(header.arcs);
        let strengths = take_f64s(header.rows);

        validate_csr(&header, &offsets, &targets)?;
        Ok(EagerSnapshot {
            header,
            offsets,
            targets,
            weights,
            strengths,
        })
    }

    pub fn header(&self) -> &SnapshotHeader {
        &self.header
    }

    /// Convert a full snapshot into an in-memory [`Graph`] (bit-identical
    /// to the graph that was written). Errors on shard files.
    pub fn into_graph(self) -> Result<Graph, SnapshotError> {
        if self.header.nranks != 1 {
            return Err(SnapshotError::Malformed {
                context: "cannot build a full graph from one shard",
            });
        }
        let offsets: Vec<usize> = self.offsets.iter().map(|&o| o as usize).collect();
        Ok(Graph::from_csr_parts(
            offsets,
            self.targets,
            self.weights,
            self.header.global_edges,
            self.header.global_weight,
            self.strengths,
        ))
    }

    fn row_range(&self, u: VertexId) -> std::ops::Range<usize> {
        let row = self.header.row_of_vertex(u);
        self.offsets[row] as usize..self.offsets[row + 1] as usize
    }
}

fn validate_csr(
    header: &SnapshotHeader,
    offsets: &[u64],
    targets: &[VertexId],
) -> Result<(), SnapshotError> {
    if offsets.first() != Some(&0) || *offsets.last().unwrap() as usize != header.arcs {
        return Err(SnapshotError::Malformed {
            context: "offsets must run 0..=arcs",
        });
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(SnapshotError::Malformed {
            context: "offsets must be non-decreasing",
        });
    }
    if targets
        .iter()
        .any(|&t| (t as usize) >= header.global_vertices)
    {
        return Err(SnapshotError::Malformed {
            context: "arc target out of range",
        });
    }
    Ok(())
}

impl GraphStore for EagerSnapshot {
    fn num_vertices(&self) -> usize {
        self.header.global_vertices
    }

    fn num_edges(&self) -> usize {
        self.header.global_edges
    }

    fn total_weight(&self) -> f64 {
        self.header.global_weight
    }

    fn degree(&self, u: VertexId) -> usize {
        self.row_range(u).len()
    }

    fn strength(&self, u: VertexId) -> f64 {
        self.strengths[self.header.row_of_vertex(u)]
    }

    fn arcs_into(&self, u: VertexId, out: &mut Vec<(VertexId, f64)>) {
        out.clear();
        let r = self.row_range(u);
        out.extend(
            self.targets[r.clone()]
                .iter()
                .copied()
                .zip(self.weights[r].iter().copied()),
        );
    }
}

/// Block-cache tuning for [`PagedGraph`].
#[derive(Clone, Copy, Debug)]
pub struct PageCacheConfig {
    /// Bytes per cached block. Must be a positive multiple of 8 so typed
    /// elements never straddle a block boundary.
    pub block_bytes: usize,
    /// Maximum resident blocks (LRU eviction beyond this).
    pub capacity_blocks: usize,
}

impl Default for PageCacheConfig {
    fn default() -> Self {
        // 64 KiB × 64 = 4 MiB resident regardless of graph size.
        PageCacheConfig {
            block_bytes: 64 * 1024,
            capacity_blocks: 64,
        }
    }
}

/// Cache effectiveness counters of a [`PagedGraph`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of block lookups served from cache (1.0 when no lookups).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// File sections, in on-disk order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Section {
    Offsets = 0,
    Targets = 1,
    Weights = 2,
    Strengths = 3,
}

struct CacheSlot {
    key: (Section, u64),
    bytes: Vec<u8>,
    last_used: u64,
}

struct PagedInner {
    file: File,
    /// Fixed-capacity slot table; eviction scans it in index order for
    /// the minimum `last_used` tick (ticks are unique, so the victim is
    /// deterministic and no hash-order ever matters).
    slots: Vec<CacheSlot>,
    index: HashMap<(Section, u64), usize>,
    tick: u64,
    stats: CacheStats,
}

/// A snapshot (full or shard) read on demand through a fixed-size block
/// cache: `File::seek` + `read_exact` per block miss, bounded resident
/// memory, no mmap. Interior mutability makes the [`GraphStore`] reads
/// `&self`; the type is intentionally `!Sync` (one pager per rank).
pub struct PagedGraph {
    header: SnapshotHeader,
    cfg: PageCacheConfig,
    section_base: [u64; 4],
    section_len: [u64; 4],
    inner: RefCell<PagedInner>,
}

impl PagedGraph {
    /// Open a snapshot for demand paging. The whole file is streamed once
    /// through a fixed 64 KiB buffer to verify the trailing checksum —
    /// bit flips are rejected up front, exactly as the eager loader does —
    /// after which reads touch only the blocks they need.
    pub fn open(path: &Path, cfg: PageCacheConfig) -> Result<Self, SnapshotError> {
        assert!(
            cfg.block_bytes >= 8 && cfg.block_bytes.is_multiple_of(8),
            "block_bytes must be a positive multiple of 8"
        );
        assert!(cfg.capacity_blocks >= 2, "need at least two cache blocks");
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        if len < HEADER_BYTES + CHECKSUM_BYTES {
            return Err(SnapshotError::Truncated { context: "header" });
        }

        // Single streaming pass: hash everything before the trailer while
        // capturing the header bytes.
        let mut head = [0u8; HEADER_BYTES as usize];
        let mut hash = FNV_OFFSET;
        let mut buf = vec![0u8; 64 * 1024];
        let mut seen: u64 = 0;
        let body_len = len - CHECKSUM_BYTES;
        let mut trailer = [0u8; CHECKSUM_BYTES as usize];
        loop {
            let n = file.read(&mut buf)?;
            if n == 0 {
                break;
            }
            let chunk = &buf[..n];
            // Header capture.
            if seen < HEADER_BYTES {
                let take = ((HEADER_BYTES - seen) as usize).min(n);
                head[seen as usize..seen as usize + take].copy_from_slice(&chunk[..take]);
            }
            // Hash the part of this chunk that lies before the trailer and
            // capture the part that overlaps it.
            let start = seen;
            let end = seen + n as u64;
            if start < body_len {
                let upto = ((body_len - start) as usize).min(n);
                hash = fnv1a(hash, &chunk[..upto]);
            }
            if end > body_len {
                let tail_from = (body_len.max(start) - start) as usize;
                let tail_at = (body_len.max(start) - body_len) as usize;
                trailer[tail_at..tail_at + (n - tail_from)].copy_from_slice(&chunk[tail_from..]);
            }
            seen = end;
        }
        if seen != len {
            return Err(SnapshotError::Truncated {
                context: "sections",
            });
        }
        let header = SnapshotHeader::decode(&head)?;
        if len < header.file_bytes() {
            return Err(SnapshotError::Truncated {
                context: "sections",
            });
        }
        if len > header.file_bytes() {
            return Err(SnapshotError::Malformed {
                context: "trailing bytes after checksum",
            });
        }
        if hash != u64::from_le_bytes(trailer) {
            return Err(SnapshotError::ChecksumMismatch);
        }

        let section_len = header.section_bytes();
        let mut section_base = [0u64; 4];
        let mut at = HEADER_BYTES;
        for (base, len) in section_base.iter_mut().zip(section_len.iter()) {
            *base = at;
            at += len;
        }
        file.seek(SeekFrom::Start(0))?;
        Ok(PagedGraph {
            header,
            cfg,
            section_base,
            section_len,
            inner: RefCell::new(PagedInner {
                file,
                slots: Vec::with_capacity(cfg.capacity_blocks),
                index: HashMap::new(),
                tick: 0,
                stats: CacheStats::default(),
            }),
        })
    }

    pub fn header(&self) -> &SnapshotHeader {
        &self.header
    }

    /// Block cache hit/miss counters so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.borrow().stats
    }

    /// Run `f` over the cached bytes of `block` of `sec`, loading (and
    /// possibly evicting) on miss.
    fn with_block<R>(
        &self,
        sec: Section,
        block: u64,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R, SnapshotError> {
        let mut inner = self.inner.borrow_mut();
        let inner = &mut *inner;
        inner.tick += 1;
        let tick = inner.tick;
        let key = (sec, block);
        if let Some(&slot) = inner.index.get(&key) {
            inner.stats.hits += 1;
            inner.slots[slot].last_used = tick;
            return Ok(f(&inner.slots[slot].bytes));
        }
        inner.stats.misses += 1;
        let sec_len = self.section_len[sec as usize];
        let start = block * self.cfg.block_bytes as u64;
        debug_assert!(start < sec_len, "block past end of section");
        let len = (sec_len - start).min(self.cfg.block_bytes as u64) as usize;
        let mut bytes = vec![0u8; len];
        inner
            .file
            .seek(SeekFrom::Start(self.section_base[sec as usize] + start))?;
        inner.file.read_exact(&mut bytes)?;
        let slot = if inner.slots.len() < self.cfg.capacity_blocks {
            inner.slots.push(CacheSlot {
                key,
                bytes,
                last_used: tick,
            });
            inner.slots.len() - 1
        } else {
            // Deterministic LRU: unique ticks, scan in slot order.
            let victim = inner
                .slots
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(i, _)| i)
                .unwrap();
            let old_key = inner.slots[victim].key;
            inner.index.remove(&old_key);
            inner.slots[victim] = CacheSlot {
                key,
                bytes,
                last_used: tick,
            };
            victim
        };
        inner.index.insert(key, slot);
        Ok(f(&inner.slots[slot].bytes))
    }

    /// Visit the bytes of elements `start..end` of `sec` (element size
    /// `elem` bytes), block by block, in order.
    fn walk(
        &self,
        sec: Section,
        elem: u64,
        start: u64,
        end: u64,
        mut f: impl FnMut(&[u8]),
    ) -> Result<(), SnapshotError> {
        if start >= end {
            return Ok(());
        }
        let bb = self.cfg.block_bytes as u64;
        let first = start * elem / bb;
        let last = (end * elem - 1) / bb;
        for block in first..=last {
            let block_start = block * bb;
            let lo = (start * elem).max(block_start) - block_start;
            let hi = (end * elem).min(block_start + bb) - block_start;
            self.with_block(sec, block, |bytes| f(&bytes[lo as usize..hi as usize]))?;
        }
        Ok(())
    }

    fn read_u64_elem(&self, sec: Section, idx: u64) -> u64 {
        let mut out = 0u64;
        self.walk(sec, 8, idx, idx + 1, |bytes| {
            out = u64::from_le_bytes(bytes.try_into().unwrap());
        })
        .unwrap_or_else(|e| panic!("paged read failed: {e}"));
        out
    }

    fn row_bounds(&self, u: VertexId) -> (u64, u64) {
        let row = self.header.row_of_vertex(u) as u64;
        let mut bounds = [0u64; 2];
        let mut i = 0;
        self.walk(Section::Offsets, 8, row, row + 2, |bytes| {
            for c in bytes.chunks_exact(8) {
                bounds[i] = u64::from_le_bytes(c.try_into().unwrap());
                i += 1;
            }
        })
        .unwrap_or_else(|e| panic!("paged read failed: {e}"));
        debug_assert_eq!(i, 2);
        (bounds[0], bounds[1])
    }
}

impl GraphStore for PagedGraph {
    fn num_vertices(&self) -> usize {
        self.header.global_vertices
    }

    fn num_edges(&self) -> usize {
        self.header.global_edges
    }

    fn total_weight(&self) -> f64 {
        self.header.global_weight
    }

    fn degree(&self, u: VertexId) -> usize {
        let (a, b) = self.row_bounds(u);
        (b - a) as usize
    }

    fn strength(&self, u: VertexId) -> f64 {
        let row = self.header.row_of_vertex(u) as u64;
        f64::from_bits(self.read_u64_elem(Section::Strengths, row))
    }

    fn arcs_into(&self, u: VertexId, out: &mut Vec<(VertexId, f64)>) {
        let (a, b) = self.row_bounds(u);
        out.clear();
        out.reserve((b - a) as usize);
        self.walk(Section::Targets, 4, a, b, |bytes| {
            for c in bytes.chunks_exact(4) {
                out.push((u32::from_le_bytes(c.try_into().unwrap()), 0.0));
            }
        })
        .unwrap_or_else(|e| panic!("paged read failed: {e}"));
        let mut i = 0;
        self.walk(Section::Weights, 8, a, b, |bytes| {
            for c in bytes.chunks_exact(8) {
                out[i].1 = f64::from_bits(u64::from_le_bytes(c.try_into().unwrap()));
                i += 1;
            }
        })
        .unwrap_or_else(|e| panic!("paged read failed: {e}"));
        debug_assert_eq!(i, out.len());
    }
}

/// A snapshot-backed store, eager or paged — what `dinfomap _rank` loads
/// behind `--graph-shard-dir`.
pub enum SnapshotStore {
    Eager(EagerSnapshot),
    Paged(PagedGraph),
}

impl SnapshotStore {
    /// Open `path` with the requested residency.
    pub fn open(path: &Path, paged: Option<PageCacheConfig>) -> Result<Self, SnapshotError> {
        Ok(match paged {
            None => SnapshotStore::Eager(EagerSnapshot::read(path)?),
            Some(cfg) => SnapshotStore::Paged(PagedGraph::open(path, cfg)?),
        })
    }

    pub fn header(&self) -> &SnapshotHeader {
        match self {
            SnapshotStore::Eager(s) => s.header(),
            SnapshotStore::Paged(p) => p.header(),
        }
    }

    /// Cache counters (paged stores only).
    pub fn cache_stats(&self) -> Option<CacheStats> {
        match self {
            SnapshotStore::Eager(_) => None,
            SnapshotStore::Paged(p) => Some(p.cache_stats()),
        }
    }
}

impl GraphStore for SnapshotStore {
    fn num_vertices(&self) -> usize {
        match self {
            SnapshotStore::Eager(s) => s.num_vertices(),
            SnapshotStore::Paged(p) => p.num_vertices(),
        }
    }

    fn num_edges(&self) -> usize {
        match self {
            SnapshotStore::Eager(s) => s.num_edges(),
            SnapshotStore::Paged(p) => p.num_edges(),
        }
    }

    fn total_weight(&self) -> f64 {
        match self {
            SnapshotStore::Eager(s) => s.total_weight(),
            SnapshotStore::Paged(p) => p.total_weight(),
        }
    }

    fn degree(&self, u: VertexId) -> usize {
        match self {
            SnapshotStore::Eager(s) => s.degree(u),
            SnapshotStore::Paged(p) => p.degree(u),
        }
    }

    fn strength(&self, u: VertexId) -> f64 {
        match self {
            SnapshotStore::Eager(s) => s.strength(u),
            SnapshotStore::Paged(p) => p.strength(u),
        }
    }

    fn arcs_into(&self, u: VertexId, out: &mut Vec<(VertexId, f64)>) {
        match self {
            SnapshotStore::Eager(s) => s.arcs_into(u, out),
            SnapshotStore::Paged(p) => p.arcs_into(u, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dinfomap-snap-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_graph() -> Graph {
        Graph::from_edges(
            6,
            &[
                (0, 1, 1.0),
                (0, 2, 2.5),
                (1, 2, 0.125),
                (2, 2, 3.0), // self-loop
                (3, 4, 1.0),
                (4, 5, 7.0),
                (5, 0, 0.5),
            ],
        )
    }

    fn assert_store_matches_graph(store: &dyn GraphStore, g: &Graph) {
        assert_eq!(store.num_vertices(), g.num_vertices());
        assert_eq!(store.num_edges(), g.num_edges());
        assert_eq!(store.total_weight().to_bits(), g.total_weight().to_bits());
        let mut arcs = Vec::new();
        for u in 0..g.num_vertices() as VertexId {
            assert_eq!(store.degree(u), g.degree(u));
            assert_eq!(store.strength(u).to_bits(), g.strength(u).to_bits());
            store.arcs_into(u, &mut arcs);
            let want: Vec<(VertexId, f64)> = g.arcs(u).collect();
            assert_eq!(arcs.len(), want.len());
            for (got, want) in arcs.iter().zip(&want) {
                assert_eq!(got.0, want.0);
                assert_eq!(got.1.to_bits(), want.1.to_bits());
            }
        }
    }

    #[test]
    fn full_snapshot_roundtrips_eager_and_paged() {
        let g = sample_graph();
        let dir = tmp_dir("roundtrip");
        let path = dir.join("g.snap");
        write_snapshot(&g, &path).unwrap();

        let eager = EagerSnapshot::read(&path).unwrap();
        assert_eq!(eager.header().kind, SnapshotKind::Full);
        assert_store_matches_graph(&eager, &g);
        let back = eager.into_graph().unwrap();
        assert_eq!(back, g);

        // Tiny blocks force heavy paging and eviction.
        let paged = PagedGraph::open(
            &path,
            PageCacheConfig {
                block_bytes: 8,
                capacity_blocks: 2,
            },
        )
        .unwrap();
        assert_store_matches_graph(&paged, &g);
        let stats = paged.cache_stats();
        assert!(stats.misses > 0, "tiny cache must miss");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shards_cover_owned_rows_bit_exactly() {
        let g = generators::lfr_like(
            generators::LfrParams {
                n: 120,
                degree_exponent: 2.5,
                k_min: 2,
                k_max: 20,
                community_exponent: 1.5,
                c_min: 8,
                c_max: 40,
                mu: 0.2,
                shuffle_ids: false,
            },
            7,
        )
        .0;
        let dir = tmp_dir("shards");
        let p = 3;
        let paths = write_shards(&g, p, &dir).unwrap();
        assert_eq!(paths.len(), p);
        let mut arcs = Vec::new();
        for (rank, path) in paths.iter().enumerate() {
            let shard = EagerSnapshot::read(path).unwrap();
            let h = *shard.header();
            assert_eq!(h.kind, SnapshotKind::Shard);
            assert_eq!(h.rank, rank);
            assert_eq!(h.nranks, p);
            assert_eq!(h.global_vertices, g.num_vertices());
            assert_eq!(h.global_edges, g.num_edges());
            assert_eq!(h.global_weight.to_bits(), g.total_weight().to_bits());
            assert_eq!(h.rows, owned_row_count(g.num_vertices(), p, rank));
            for row in 0..h.rows {
                let v = h.vertex_of_row(row);
                assert_eq!(shard.degree(v), g.degree(v));
                assert_eq!(shard.strength(v).to_bits(), g.strength(v).to_bits());
                shard.arcs_into(v, &mut arcs);
                let want: Vec<(VertexId, f64)> = g.arcs(v).collect();
                assert_eq!(arcs, want);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_is_rejected_with_named_errors() {
        let g = sample_graph();
        let dir = tmp_dir("corrupt");
        let path = dir.join("g.snap");
        write_snapshot(&g, &path).unwrap();
        let good = std::fs::read(&path).unwrap();

        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xff;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            EagerSnapshot::read(&path),
            Err(SnapshotError::BadMagic)
        ));

        // Unknown version.
        let mut bad = good.clone();
        bad[8] = 0x7f;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            EagerSnapshot::read(&path),
            Err(SnapshotError::BadVersion { found: 0x7f })
        ));

        // Truncation at every interesting boundary.
        for cut in [
            4usize,
            HEADER_BYTES as usize,
            good.len() - 9,
            good.len() - 1,
        ] {
            std::fs::write(&path, &good[..cut]).unwrap();
            assert!(
                matches!(
                    EagerSnapshot::read(&path),
                    Err(SnapshotError::Truncated { .. })
                ),
                "cut at {cut} must read as truncated"
            );
            assert!(
                matches!(
                    PagedGraph::open(&path, PageCacheConfig::default()),
                    Err(SnapshotError::Truncated { .. })
                ),
                "paged cut at {cut} must read as truncated"
            );
        }

        // A flipped bit anywhere in the body fails the checksum for both
        // loaders.
        for at in [HEADER_BYTES as usize + 3, good.len() / 2, good.len() - 12] {
            let mut bad = good.clone();
            bad[at] ^= 0x10;
            std::fs::write(&path, &bad).unwrap();
            assert!(matches!(
                EagerSnapshot::read(&path),
                Err(SnapshotError::ChecksumMismatch)
            ));
            assert!(matches!(
                PagedGraph::open(&path, PageCacheConfig::default()),
                Err(SnapshotError::ChecksumMismatch)
            ));
        }

        // Trailing garbage is named, not silently ignored.
        let mut bad = good.clone();
        bad.extend_from_slice(b"junk");
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            EagerSnapshot::read(&path),
            Err(SnapshotError::Malformed { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn header_probe_validates_cheaply() {
        let g = sample_graph();
        let dir = tmp_dir("probe");
        let path = dir.join("g.snap");
        write_snapshot(&g, &path).unwrap();
        let h = read_header(&path).unwrap();
        assert_eq!(h.global_vertices, 6);
        assert_eq!(h.global_edges, g.num_edges());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Streaming a graph's edge list through a [`ShardSink`] must produce
    /// byte-identical files to sharding the in-memory graph, for any world
    /// size — the sink's sort+merge is the builder's convention.
    #[test]
    fn shard_sink_matches_in_memory_sharding() {
        let (g, _) = generators::lfr_like(
            generators::LfrParams {
                n: 150,
                ..Default::default()
            },
            21,
        );
        for p in [1usize, 3] {
            let mem_dir = tmp_dir(&format!("sink-mem-{p}"));
            let sink_dir = tmp_dir(&format!("sink-stream-{p}"));
            let mem_paths = write_shards(&g, p, &mem_dir).unwrap();
            let mut sink = ShardSink::create(&sink_dir, p, g.num_vertices()).unwrap();
            for (u, v, w) in g.edges() {
                sink.edge(u, v, w).unwrap();
            }
            let sink_paths = sink.finalize().unwrap();
            assert_eq!(mem_paths.len(), sink_paths.len());
            for (a, b) in mem_paths.iter().zip(&sink_paths) {
                let ba = std::fs::read(a).unwrap();
                let bb = std::fs::read(b).unwrap();
                assert_eq!(ba, bb, "p={p}: sink shard diverged from in-memory shard");
            }
            // Spill files are cleaned up.
            assert!(!ShardSink::spill_path(&sink_dir, 0).exists());
            std::fs::remove_dir_all(&mem_dir).ok();
            std::fs::remove_dir_all(&sink_dir).ok();
        }
    }

    /// Parallel emissions and self-loops merge exactly like the builder.
    #[test]
    fn shard_sink_merges_parallel_edges_and_self_loops() {
        let mut b = crate::csr::GraphBuilder::new(4);
        let emissions = [(0u32, 1u32, 1.0f64), (1, 0, 0.5), (2, 2, 2.0), (0, 3, 1.0)];
        for &(u, v, w) in &emissions {
            b.add_edge(u, v, w);
        }
        let g = b.build();
        let dir = tmp_dir("sink-merge");
        let mut sink = ShardSink::create(&dir, 1, 4).unwrap();
        for &(u, v, w) in &emissions {
            sink.edge(u, v, w).unwrap();
        }
        let paths = sink.finalize().unwrap();
        let loaded = EagerSnapshot::read(&paths[0])
            .unwrap()
            .into_graph()
            .unwrap();
        assert_eq!(loaded, g);
    }

    /// Streamed sharded generation is deterministic and shard-count
    /// invariant: the same `(params, seed)` written as 1 shard or as p
    /// shards describes the same global graph.
    #[test]
    fn streamed_generation_is_shard_count_invariant() {
        let params = generators::LfrParams {
            n: 200,
            shuffle_ids: false,
            ..Default::default()
        };
        let full_dir = tmp_dir("gen-full");
        let shard_dir = tmp_dir("gen-shards");
        let mut full_sink = ShardSink::create(&full_dir, 1, params.n).unwrap();
        generators::streaming_lfr_edges(params, 5, |u, v, w| full_sink.edge(u, v, w)).unwrap();
        let full = full_sink.finalize().unwrap();
        let g = EagerSnapshot::read(&full[0]).unwrap().into_graph().unwrap();
        assert!(g.num_edges() > params.n / 2, "streamed stand-in too sparse");

        let mut sink = ShardSink::create(&shard_dir, 3, params.n).unwrap();
        generators::streaming_lfr_edges(params, 5, |u, v, w| sink.edge(u, v, w)).unwrap();
        let shard_paths = sink.finalize().unwrap();
        let mem_paths = write_shards(&g, 3, &tmp_dir("gen-mem")).unwrap();
        for (a, b) in shard_paths.iter().zip(&mem_paths) {
            assert_eq!(
                std::fs::read(a).unwrap(),
                std::fs::read(b).unwrap(),
                "streamed shard != shard of the reassembled graph"
            );
        }
        std::fs::remove_dir_all(&full_dir).ok();
        std::fs::remove_dir_all(&shard_dir).ok();
    }
}
