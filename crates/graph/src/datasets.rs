//! Scaled synthetic stand-ins for the paper's Table 1 datasets.
//!
//! The paper evaluates on nine public real-world graphs (Amazon … UK-2007,
//! 0.9M–3.78B edges). Those exact files are not available here, and the
//! billion-edge ones would not fit a laptop anyway, so each dataset is
//! replaced by a *seeded synthetic stand-in* that preserves the properties
//! the paper's experiments actually exercise:
//!
//! * the edge/vertex ratio (workload density),
//! * the degree-tail exponent (web crawls are hubbier than social graphs —
//!   the driver of 1D-partitioning imbalance in Figures 6–7),
//! * community structure with a dataset-class mixing parameter (the driver
//!   of convergence and merge-rate behaviour in Figures 4–5).
//!
//! Every profile records the real |V|, |E| of Table 1 next to the generated
//! scale, and the Table 1 harness prints both.

use std::path::{Path, PathBuf};

use crate::csr::Graph;
use crate::generators::{lfr_like, streaming_lfr_edges, LfrParams};
use crate::snapshot::{ShardSink, SnapshotError};

/// Which Table 1 dataset a profile stands in for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DatasetId {
    Amazon,
    Dblp,
    NdWeb,
    YouTube,
    LiveJournal,
    Uk2005,
    WebBase2001,
    Friendster,
    Uk2007,
}

impl DatasetId {
    /// All nine datasets, in the paper's small → large order.
    pub const ALL: [DatasetId; 9] = [
        DatasetId::Amazon,
        DatasetId::Dblp,
        DatasetId::NdWeb,
        DatasetId::YouTube,
        DatasetId::LiveJournal,
        DatasetId::Uk2005,
        DatasetId::WebBase2001,
        DatasetId::Friendster,
        DatasetId::Uk2007,
    ];

    /// The paper's four "small" datasets used in Figures 4–5 and Table 2.
    pub const SMALL: [DatasetId; 4] = [
        DatasetId::Amazon,
        DatasetId::Dblp,
        DatasetId::NdWeb,
        DatasetId::YouTube,
    ];

    /// The paper's four "large" datasets used in Figures 6–9.
    pub const LARGE: [DatasetId; 4] = [
        DatasetId::Uk2005,
        DatasetId::WebBase2001,
        DatasetId::Friendster,
        DatasetId::Uk2007,
    ];

    /// The stand-in profile for this dataset.
    pub fn profile(self) -> DatasetProfile {
        profile_of(self)
    }
}

/// Description of one Table 1 dataset and its synthetic stand-in.
#[derive(Clone, Debug)]
pub struct DatasetProfile {
    pub id: DatasetId,
    /// Table 1 name.
    pub name: &'static str,
    /// Table 1 description.
    pub description: &'static str,
    /// Real vertex count from Table 1.
    pub real_vertices: u64,
    /// Real edge count from Table 1.
    pub real_edges: u64,
    /// Generated vertex count at scale 1.0.
    pub gen_vertices: usize,
    /// Degree power-law exponent of the stand-in.
    pub degree_exponent: f64,
    /// Maximum-degree fraction of n (hub size).
    pub hub_fraction: f64,
    /// Community mixing parameter μ of the stand-in.
    pub mu: f64,
    /// Minimum degree.
    pub k_min: usize,
}

impl DatasetProfile {
    /// Edge/vertex ratio of the real dataset.
    pub fn real_density(&self) -> f64 {
        self.real_edges as f64 / self.real_vertices as f64
    }

    /// Generate the stand-in at the default scale with planted communities.
    pub fn generate(&self, seed: u64) -> (Graph, Vec<u32>) {
        self.generate_scaled(1.0, seed)
    }

    /// Generate at `scale` × the default vertex count (0 < scale ≤ ~4).
    /// Degrees are chosen so the realized edge/vertex ratio approximates the
    /// real dataset's.
    pub fn generate_scaled(&self, scale: f64, seed: u64) -> (Graph, Vec<u32>) {
        lfr_like(self.scaled_params(scale), seed ^ fnv(self.name))
    }

    /// The LFR parameters of this stand-in at `scale` × the default vertex
    /// count — shared by the in-memory and streaming generation paths so
    /// both describe the same family.
    pub fn scaled_params(&self, scale: f64) -> LfrParams {
        assert!(scale > 0.0);
        let n = ((self.gen_vertices as f64 * scale) as usize).max(64);
        // For a truncated power law with exponent γ the mean is driven by
        // k_min; pick k_min so the sampled mean lands near the target, then
        // let the tail supply the hubs.
        let k_min = self.k_min.max(1);
        let k_max = ((n as f64 * self.hub_fraction) as usize).clamp(k_min + 1, n - 1);
        let c_min = (n / 200).clamp(8, 64);
        let c_max = (n / 10).clamp(c_min + 1, n);
        LfrParams {
            n,
            degree_exponent: self.degree_exponent,
            k_min,
            k_max,
            community_exponent: 1.5,
            c_min,
            c_max,
            mu: self.mu,
            // Real crawls and dumps are id-ordered by site/user, so ids
            // carry community locality; the stand-ins preserve that.
            shuffle_ids: false,
        }
    }

    /// Stream the stand-in at `scale` straight into `nranks` snapshot
    /// shards under `dir`, never materializing the graph: edges go from
    /// the per-vertex RNG streams of
    /// [`crate::generators::streaming_lfr_edges`] through a
    /// [`ShardSink`]'s spill files. Peak memory is `O(largest shard)`, so
    /// stand-ins 2–3 orders of magnitude beyond what
    /// [`DatasetProfile::generate_scaled`] can hold become writable on a
    /// fixed RAM budget. Returns the shard paths in rank order.
    ///
    /// The streamed family is deliberately *not* edge-identical to the
    /// in-memory [`lfr_like`] (global stub shuffles cannot stream); it
    /// preserves the same knobs — degree tail, community-size law, μ —
    /// which is what the scale experiments exercise.
    pub fn generate_sharded(
        &self,
        scale: f64,
        seed: u64,
        nranks: usize,
        dir: &Path,
    ) -> Result<Vec<PathBuf>, SnapshotError> {
        let params = self.scaled_params(scale);
        let mut sink = ShardSink::create(dir, nranks, params.n)?;
        streaming_lfr_edges(params, seed ^ fnv(self.name), |u, v, w| sink.edge(u, v, w))?;
        sink.finalize()
    }
}

fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn profile_of(id: DatasetId) -> DatasetProfile {
    // gen_vertices ≈ real/1000 for the small sets and real/1000–real/4000
    // for the giants, keeping the *relative* ordering of sizes. k_min tunes
    // the realized edge/vertex ratio toward the real one.
    match id {
        DatasetId::Amazon => DatasetProfile {
            id,
            name: "Amazon",
            description: "Frequently co-purchased products from Amazon",
            real_vertices: 330_000,
            real_edges: 920_000,
            gen_vertices: 16_000,
            degree_exponent: 2.8,
            hub_fraction: 0.01,
            mu: 0.15,
            k_min: 3,
        },
        DatasetId::Dblp => DatasetProfile {
            id,
            name: "DBLP",
            description: "A co-authorship network from DBLP",
            real_vertices: 310_000,
            real_edges: 1_040_000,
            gen_vertices: 16_000,
            degree_exponent: 2.6,
            hub_fraction: 0.01,
            mu: 0.2,
            k_min: 4,
        },
        DatasetId::NdWeb => DatasetProfile {
            id,
            name: "ND-Web",
            description: "A web network of University of Notre Dame",
            real_vertices: 330_000,
            real_edges: 1_500_000,
            gen_vertices: 16_000,
            degree_exponent: 2.1,
            hub_fraction: 0.15,
            mu: 0.2,
            k_min: 2,
        },
        DatasetId::YouTube => DatasetProfile {
            id,
            name: "YouTube",
            description: "YouTube friendship network",
            real_vertices: 11_340_000,
            real_edges: 29_870_000,
            gen_vertices: 48_000,
            degree_exponent: 2.2,
            hub_fraction: 0.04,
            mu: 0.4,
            k_min: 2,
        },
        DatasetId::LiveJournal => DatasetProfile {
            id,
            name: "LiveJournal",
            description: "A virtual-community social site",
            real_vertices: 5_200_000,
            real_edges: 76_940_000,
            gen_vertices: 40_000,
            degree_exponent: 2.4,
            hub_fraction: 0.03,
            mu: 0.35,
            k_min: 8,
        },
        DatasetId::Uk2005 => DatasetProfile {
            id,
            name: "UK-2005",
            description: "Web crawl of the .uk domain in 2005",
            real_vertices: 39_460_000,
            real_edges: 936_400_000,
            gen_vertices: 40_000,
            degree_exponent: 1.9,
            hub_fraction: 0.25,
            mu: 0.25,
            k_min: 3,
        },
        DatasetId::WebBase2001 => DatasetProfile {
            id,
            name: "WebBase-2001",
            description: "A crawl graph by WebBase",
            real_vertices: 118_140_000,
            real_edges: 1_010_000_000,
            gen_vertices: 96_000,
            degree_exponent: 2.1,
            hub_fraction: 0.15,
            mu: 0.25,
            k_min: 2,
        },
        DatasetId::Friendster => DatasetProfile {
            id,
            name: "Friendster",
            description: "An on-line gaming network",
            real_vertices: 65_610_000,
            real_edges: 1_810_000_000,
            gen_vertices: 56_000,
            degree_exponent: 2.5,
            hub_fraction: 0.08,
            mu: 0.4,
            k_min: 8,
        },
        DatasetId::Uk2007 => DatasetProfile {
            id,
            name: "UK-2007",
            description: "Web crawl of the .uk domain in 2007",
            real_vertices: 105_900_000,
            real_edges: 3_780_000_000,
            gen_vertices: 80_000,
            degree_exponent: 1.95,
            hub_fraction: 0.25,
            mu: 0.25,
            k_min: 4,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_generate_at_tiny_scale() {
        for id in DatasetId::ALL {
            let p = id.profile();
            let (g, truth) = p.generate_scaled(0.05, 1);
            assert!(g.num_vertices() >= 64, "{}: too few vertices", p.name);
            assert!(
                g.num_edges() > g.num_vertices() / 2,
                "{}: too sparse",
                p.name
            );
            assert_eq!(truth.len(), g.num_vertices());
        }
    }

    #[test]
    fn web_crawls_are_hubbier_than_social_graphs() {
        let web = DatasetId::Uk2005.profile().generate_scaled(0.2, 2).0;
        let social = DatasetId::Amazon.profile().generate_scaled(0.5, 2).0;
        let web_ratio = web.max_degree() as f64 / web.num_vertices() as f64;
        let social_ratio = social.max_degree() as f64 / social.num_vertices() as f64;
        assert!(
            web_ratio > social_ratio,
            "web hub ratio {web_ratio} should exceed social {social_ratio}"
        );
    }

    #[test]
    fn profiles_are_deterministic() {
        let a = DatasetId::Dblp.profile().generate_scaled(0.05, 9).0;
        let b = DatasetId::Dblp.profile().generate_scaled(0.05, 9).0;
        assert_eq!(a, b);
    }

    #[test]
    fn real_densities_match_table1_ordering() {
        // UK-2007 is the densest giant; Amazon the sparsest small set.
        let uk = DatasetId::Uk2007.profile().real_density();
        let amazon = DatasetId::Amazon.profile().real_density();
        assert!(uk > 30.0 && amazon < 3.5);
    }
}
