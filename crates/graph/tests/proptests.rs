//! Property tests for the graph substrate: CSR invariants, generator
//! contracts, and IO round trips.

use proptest::prelude::*;

use infomap_graph::generators::{self, LfrParams};
use infomap_graph::{io, Graph, VertexId};

fn arbitrary_edges(n: usize) -> impl Strategy<Value = Vec<(VertexId, VertexId, f64)>> {
    proptest::collection::vec((0..n as VertexId, 0..n as VertexId, 0.1f64..10.0), 0..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn strengths_sum_to_twice_total_weight(edges in arbitrary_edges(20)) {
        let g = Graph::from_edges(20, &edges);
        let sum: f64 = (0..20).map(|u| g.strength(u)).sum();
        prop_assert!((sum - 2.0 * g.total_weight()).abs() < 1e-9);
    }

    #[test]
    fn edges_iterator_matches_edge_count(edges in arbitrary_edges(15)) {
        let g = Graph::from_edges(15, &edges);
        prop_assert_eq!(g.edges().count(), g.num_edges());
        // Every listed edge has u <= v and positive weight (weights merge).
        for (u, v, w) in g.edges() {
            prop_assert!(u <= v);
            prop_assert!(w > 0.0);
        }
    }

    #[test]
    fn arcs_are_symmetric(edges in arbitrary_edges(15)) {
        let g = Graph::from_edges(15, &edges);
        for u in 0..15 as VertexId {
            for (v, w) in g.arcs(u) {
                if v != u {
                    let back: f64 = g
                        .arcs(v)
                        .filter(|&(t, _)| t == u)
                        .map(|(_, w)| w)
                        .sum();
                    prop_assert!((back - w).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn components_partition_the_vertices(edges in arbitrary_edges(25)) {
        let g = Graph::from_edges(25, &edges);
        let (comp, count) = g.components();
        prop_assert_eq!(comp.len(), 25);
        let max = comp.iter().copied().max().unwrap_or(0) as usize;
        prop_assert_eq!(max + 1, count);
        // Neighbors share a component.
        for (u, v, _) in g.edges() {
            prop_assert_eq!(comp[u as usize], comp[v as usize]);
        }
    }

    #[test]
    fn io_roundtrip_preserves_edges_and_weight(edges in arbitrary_edges(12)) {
        let g = Graph::from_edges(12, &edges);
        let mut buf = Vec::new();
        io::write_edge_list(&g, &mut buf).unwrap();
        let loaded = io::read_edge_list(&buf[..]).unwrap();
        prop_assert_eq!(loaded.graph.num_edges(), g.num_edges());
        prop_assert!((loaded.graph.total_weight() - g.total_weight()).abs() < 1e-9);
    }

    #[test]
    fn power_law_degrees_in_bounds(
        n in 10usize..400,
        gamma in 1.5f64..3.5,
        k_min in 1usize..4,
    ) {
        let k_max = k_min + 50;
        let degs = generators::power_law_degrees(n, gamma, k_min, k_max, 7);
        prop_assert_eq!(degs.len(), n);
        prop_assert!(degs.iter().all(|&d| d >= k_min && d <= k_max));
    }

    #[test]
    fn lfr_truth_covers_all_vertices(n in 100usize..400, mu in 0.05f64..0.5) {
        let (g, truth) = generators::lfr_like(
            LfrParams { n, mu, ..Default::default() },
            3,
        );
        prop_assert_eq!(truth.len(), g.num_vertices());
        // Community ids are dense from 0.
        let max = truth.iter().copied().max().unwrap() as usize;
        for c in 0..=max {
            prop_assert!(truth.iter().any(|&t| t as usize == c), "community {} empty", c);
        }
    }

    #[test]
    fn generators_are_seed_deterministic(seed in 0u64..1000) {
        let a = generators::erdos_renyi(60, 120, seed);
        let b = generators::erdos_renyi(60, 120, seed);
        prop_assert_eq!(a, b);
    }
}
