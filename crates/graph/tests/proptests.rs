//! Property tests for the graph substrate: CSR invariants, generator
//! contracts, IO round trips, and the binary snapshot codec.

use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use infomap_graph::generators::{self, LfrParams};
use infomap_graph::snapshot::{
    shard_path, write_shards, write_snapshot, EagerSnapshot, PageCacheConfig, SnapshotStore,
};
use infomap_graph::{io, Graph, GraphStore, VertexId};

static SNAP_SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh scratch directory per proptest case (cases run concurrently).
fn snap_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dinf-graph-props-{}-{}",
        std::process::id(),
        SNAP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn arbitrary_edges(n: usize) -> impl Strategy<Value = Vec<(VertexId, VertexId, f64)>> {
    proptest::collection::vec((0..n as VertexId, 0..n as VertexId, 0.1f64..10.0), 0..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn strengths_sum_to_twice_total_weight(edges in arbitrary_edges(20)) {
        let g = Graph::from_edges(20, &edges);
        let sum: f64 = (0..20).map(|u| g.strength(u)).sum();
        prop_assert!((sum - 2.0 * g.total_weight()).abs() < 1e-9);
    }

    #[test]
    fn edges_iterator_matches_edge_count(edges in arbitrary_edges(15)) {
        let g = Graph::from_edges(15, &edges);
        prop_assert_eq!(g.edges().count(), g.num_edges());
        // Every listed edge has u <= v and positive weight (weights merge).
        for (u, v, w) in g.edges() {
            prop_assert!(u <= v);
            prop_assert!(w > 0.0);
        }
    }

    #[test]
    fn arcs_are_symmetric(edges in arbitrary_edges(15)) {
        let g = Graph::from_edges(15, &edges);
        for u in 0..15 as VertexId {
            for (v, w) in g.arcs(u) {
                if v != u {
                    let back: f64 = g
                        .arcs(v)
                        .filter(|&(t, _)| t == u)
                        .map(|(_, w)| w)
                        .sum();
                    prop_assert!((back - w).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn components_partition_the_vertices(edges in arbitrary_edges(25)) {
        let g = Graph::from_edges(25, &edges);
        let (comp, count) = g.components();
        prop_assert_eq!(comp.len(), 25);
        let max = comp.iter().copied().max().unwrap_or(0) as usize;
        prop_assert_eq!(max + 1, count);
        // Neighbors share a component.
        for (u, v, _) in g.edges() {
            prop_assert_eq!(comp[u as usize], comp[v as usize]);
        }
    }

    #[test]
    fn io_roundtrip_preserves_edges_and_weight(edges in arbitrary_edges(12)) {
        let g = Graph::from_edges(12, &edges);
        let mut buf = Vec::new();
        io::write_edge_list(&g, &mut buf).unwrap();
        let loaded = io::read_edge_list(&buf[..]).unwrap();
        prop_assert_eq!(loaded.graph.num_edges(), g.num_edges());
        prop_assert!((loaded.graph.total_weight() - g.total_weight()).abs() < 1e-9);
    }

    #[test]
    fn power_law_degrees_in_bounds(
        n in 10usize..400,
        gamma in 1.5f64..3.5,
        k_min in 1usize..4,
    ) {
        let k_max = k_min + 50;
        let degs = generators::power_law_degrees(n, gamma, k_min, k_max, 7);
        prop_assert_eq!(degs.len(), n);
        prop_assert!(degs.iter().all(|&d| d >= k_min && d <= k_max));
    }

    #[test]
    fn lfr_truth_covers_all_vertices(n in 100usize..400, mu in 0.05f64..0.5) {
        let (g, truth) = generators::lfr_like(
            LfrParams { n, mu, ..Default::default() },
            3,
        );
        prop_assert_eq!(truth.len(), g.num_vertices());
        // Community ids are dense from 0.
        let max = truth.iter().copied().max().unwrap() as usize;
        for c in 0..=max {
            prop_assert!(truth.iter().any(|&t| t as usize == c), "community {} empty", c);
        }
    }

    #[test]
    fn generators_are_seed_deterministic(seed in 0u64..1000) {
        let a = generators::erdos_renyi(60, 120, seed);
        let b = generators::erdos_renyi(60, 120, seed);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn snapshot_roundtrip_is_lossless(edges in arbitrary_edges(20)) {
        let g = Graph::from_edges(20, &edges);
        let dir = snap_dir();
        let path = dir.join("g.snap");
        write_snapshot(&g, &path).unwrap();
        let back = EagerSnapshot::read(&path).unwrap().into_graph().unwrap();
        prop_assert_eq!(back, g);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shards_partition_the_graph_exactly(edges in arbitrary_edges(24), p in 1usize..5) {
        let g = Graph::from_edges(24, &edges);
        let dir = snap_dir();
        write_shards(&g, p, &dir).unwrap();
        let mut arcs = Vec::new();
        let mut expect = Vec::new();
        for rank in 0..p {
            let store = SnapshotStore::open(&shard_path(&dir, rank), None).unwrap();
            prop_assert_eq!(store.num_vertices(), g.num_vertices());
            prop_assert_eq!(store.num_edges(), g.num_edges());
            prop_assert_eq!(store.total_weight().to_bits(), g.total_weight().to_bits());
            // Every owned vertex reads back its exact CSR row.
            for v in (rank..24).step_by(p) {
                let v = v as VertexId;
                prop_assert_eq!(store.degree(v), g.degree(v));
                prop_assert_eq!(store.strength(v).to_bits(), g.strength(v).to_bits());
                store.arcs_into(v, &mut arcs);
                expect.clear();
                expect.extend(g.arcs(v));
                prop_assert_eq!(&arcs, &expect);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn paged_reads_are_bit_identical_to_eager(
        edges in arbitrary_edges(20),
        block in 1usize..16,
    ) {
        let g = Graph::from_edges(20, &edges);
        let dir = snap_dir();
        let path = dir.join("g.snap");
        write_snapshot(&g, &path).unwrap();
        let eager = SnapshotStore::open(&path, None).unwrap();
        // A deliberately tiny cache, so eviction happens even here.
        let paged = SnapshotStore::open(&path, Some(PageCacheConfig {
            block_bytes: block * 8,
            capacity_blocks: 2,
        })).unwrap();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for v in 0..20 as VertexId {
            prop_assert_eq!(eager.degree(v), paged.degree(v));
            prop_assert_eq!(eager.strength(v).to_bits(), paged.strength(v).to_bits());
            eager.arcs_into(v, &mut a);
            paged.arcs_into(v, &mut b);
            prop_assert_eq!(&a, &b);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn any_single_byte_corruption_is_rejected(
        edges in arbitrary_edges(16),
        at in 0usize..10_000,
        bit in 0u8..8,
    ) {
        let g = Graph::from_edges(16, &edges);
        let dir = snap_dir();
        let path = dir.join("g.snap");
        write_snapshot(&g, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let at = at % bytes.len();
        bytes[at] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();
        // Every flipped bit must surface as a *named* error — magic,
        // version, structural validation, or the checksum backstop —
        // never as silently different data.
        let err = match EagerSnapshot::read(&path) {
            Err(e) => e,
            Ok(snap) => {
                // The reader may only accept it if the flip round-trips
                // to the identical graph (e.g. a NaN-boxing-free f64
                // carrying the same bits) — which a single bit flip
                // under a checksum cannot. Force the comparison:
                prop_assert_eq!(snap.into_graph().unwrap(), g);
                unreachable!("checksummed snapshot accepted a corrupted byte");
            }
        };
        let msg = err.to_string();
        prop_assert!(!msg.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_snapshots_are_rejected(edges in arbitrary_edges(16), cut in 1usize..200) {
        let g = Graph::from_edges(16, &edges);
        let dir = snap_dir();
        let path = dir.join("g.snap");
        write_snapshot(&g, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let keep = bytes.len().saturating_sub(cut % bytes.len()).max(1);
        std::fs::write(&path, &bytes[..keep - 1]).unwrap();
        prop_assert!(EagerSnapshot::read(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
