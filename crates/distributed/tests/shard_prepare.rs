//! Shard-mode preparation equivalence: rebuilding a rank's stage-1 state
//! collectively from per-rank snapshot shards must be bit-identical to the
//! monolithic whole-graph preparation — states, delegates, scalars, and
//! the full clustering trajectory downstream of them.

use std::path::PathBuf;
use std::sync::Mutex;

use infomap_distributed::{CheckpointStore, DistributedConfig, DistributedInfomap, RankProgram};
use infomap_graph::generators;
use infomap_graph::snapshot::{
    read_header, shard_path, write_shards, PageCacheConfig, SnapshotStore,
};
use infomap_mpisim::World;

/// Assignments, codelength, and per-stage codelength trajectory.
type RunOutput = (Vec<u32>, f64, Vec<f64>);

fn tmp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("dinfomap-shard-prep-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn test_graph() -> infomap_graph::Graph {
    let (g, _) = generators::lfr_like(
        generators::LfrParams {
            n: 500,
            ..Default::default()
        },
        13,
    );
    g
}

#[test]
fn shard_prepare_matches_monolithic_prepare() {
    let g = test_graph();
    for p in [1usize, 2, 3, 5] {
        let cfg = DistributedConfig {
            nranks: p,
            ..Default::default()
        };
        let mono = RankProgram::prepare(cfg, &g);
        let dir = tmp_dir(&format!("states-{p}"));
        write_shards(&g, p, &dir).unwrap();

        let collected: Mutex<Vec<RankProgram>> = Mutex::new(Vec::new());
        World::new(p).run(|comm| {
            let path = shard_path(&dir, comm.rank());
            let header = read_header(&path).unwrap();
            // Eager on even ranks, paged on odd: the store must not matter.
            let paged = (comm.rank() % 2 == 1).then_some(PageCacheConfig {
                block_bytes: 64,
                capacity_blocks: 4,
            });
            let store = SnapshotStore::open(&path, paged).unwrap();
            let program = RankProgram::prepare_shard(cfg, &header, &store, comm);
            collected.lock().unwrap().push(program);
        });

        let mut programs = collected.into_inner().unwrap();
        programs.sort_by_key(|pr| pr.states_from);
        assert_eq!(programs.len(), p);
        for (rank, shard) in programs.iter().enumerate() {
            assert_eq!(shard.states_from, rank);
            assert_eq!(shard.states.len(), 1);
            assert_eq!(shard.delegates, mono.delegates, "p={p} rank={rank}");
            assert_eq!(
                shard.node_term.to_bits(),
                mono.node_term.to_bits(),
                "p={p} rank={rank} node term drifted"
            );
            assert_eq!(shard.one_level.to_bits(), mono.one_level.to_bits());
            assert_eq!(shard.original_n, mono.original_n);
            assert_eq!(
                shard.states[0], mono.states[rank],
                "p={p} rank={rank} local state drifted"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn shard_run_matches_monolithic_run() {
    let g = test_graph();
    let p = 4usize;
    let cfg = DistributedConfig {
        nranks: p,
        ..Default::default()
    };
    let mono = DistributedInfomap::new(cfg).run(&g);

    let dir = tmp_dir("run");
    write_shards(&g, p, &dir).unwrap();
    let ckpt = CheckpointStore::new(p);
    let result: Mutex<Option<RunOutput>> = Mutex::new(None);
    World::new(p).run(|comm| {
        let path = shard_path(&dir, comm.rank());
        let header = read_header(&path).unwrap();
        let store = SnapshotStore::open(
            &path,
            Some(PageCacheConfig {
                block_bytes: 256,
                capacity_blocks: 8,
            }),
        )
        .unwrap();
        let program = RankProgram::prepare_shard(cfg, &header, &store, comm);
        if let Some((modules, trace, codelength)) = program.run_rank(comm, &ckpt) {
            let series: Vec<f64> = trace.iter().flat_map(|t| t.mdl_series.clone()).collect();
            *result.lock().unwrap() = Some((modules, codelength, series));
        }
    });

    let (modules, codelength, series) = result.into_inner().unwrap().expect("rank 0 reports");
    assert_eq!(modules, mono.modules);
    assert_eq!(codelength.to_bits(), mono.codelength.to_bits());
    let mono_series: Vec<u64> = mono.mdl_series().iter().map(|m| m.to_bits()).collect();
    let shard_series: Vec<u64> = series.iter().map(|m| m.to_bits()).collect();
    assert_eq!(shard_series, mono_series, "MDL series diverged");
    let _ = std::fs::remove_dir_all(&dir);
}
