//! Deterministic chaos tests: seeded rank crashes against the
//! checkpoint/recovery driver. The headline property is the paper-quality
//! guarantee under failure — a crashed rank is retried from the last
//! round-boundary checkpoint and, because the stage cursor carries the
//! mid-stream RNG, the recovered run is *bit-identical* to the fault-free
//! one on the same seed.

use infomap_distributed::{DistributedConfig, DistributedInfomap, RecoveryConfig};
use infomap_graph::generators::{self, LfrParams};
use infomap_mpisim::FaultPlan;

fn lfr() -> infomap_graph::Graph {
    generators::lfr_like(LfrParams { n: 400, ..Default::default() }, 11).0
}

fn chaos_cfg() -> DistributedConfig {
    DistributedConfig {
        nranks: 3,
        recovery: RecoveryConfig {
            checkpoint_every: 2,
            max_retries: 3,
            degrade_gracefully: false,
        },
        ..Default::default()
    }
}

#[test]
fn fault_free_run_reports_no_recovery_activity() {
    let g = lfr();
    let out = DistributedInfomap::new(DistributedConfig {
        nranks: 3,
        ..Default::default()
    })
    .run(&g);
    assert_eq!(out.recovery.attempts, 1);
    assert_eq!(out.recovery.restores, 0);
    assert_eq!(out.recovery.checkpoints_committed, 0);
    assert!(!out.recovery.degraded);
    assert!(out.recovery.failures.is_empty());
    // With checkpoint_every = 0 (the default), the run must not even
    // meter a checkpoint or recovery phase.
    for rs in &out.rank_stats {
        assert!(
            rs.phases
                .keys()
                .all(|k| !k.contains("Checkpoint") && !k.contains("Recovery")),
            "rank {} metered {:?}",
            rs.rank,
            rs.phases.keys().collect::<Vec<_>>()
        );
        assert!(!rs.faults.any());
        assert_eq!(rs.total.checkpoint_bytes, 0);
    }
}

#[test]
fn checkpointing_without_faults_is_invisible_to_the_result() {
    let g = lfr();
    let plain = DistributedInfomap::new(DistributedConfig {
        nranks: 3,
        ..Default::default()
    })
    .run(&g);
    let ckpt = DistributedInfomap::new(chaos_cfg()).run(&g);

    // The checkpoint collective sits outside the algorithm's RNG and
    // message streams, so the clustering is bit-identical.
    assert_eq!(plain.modules, ckpt.modules);
    assert_eq!(plain.codelength.to_bits(), ckpt.codelength.to_bits());
    assert!(ckpt.recovery.checkpoints_committed > 0);
    assert_eq!(ckpt.recovery.restores, 0);
    // Checkpoint traffic is metered so the cost model can price it.
    let ckpt_bytes: u64 = ckpt.rank_stats.iter().map(|r| r.total.checkpoint_bytes).sum();
    assert!(ckpt_bytes > 0);
}

/// The acceptance scenario: kill one rank mid-stage-1, let the driver
/// restore the last checkpoint, and demand the exact fault-free answer.
#[test]
fn crash_mid_stage_one_recovers_bit_identically() {
    let g = lfr();
    let clean = DistributedInfomap::new(chaos_cfg()).run(&g);
    // Comm event 200 on rank 1 lands mid-stage-1 (≈ round 14 of ~40),
    // well past the first round-2 checkpoint.
    let plan = FaultPlan::new(7).crash(1, 200);
    let out = DistributedInfomap::new(chaos_cfg())
        .run_with_plan(&g, Some(plan))
        .expect("the retry loop must absorb a single crash");

    assert_eq!(out.recovery.attempts, 2);
    assert_eq!(out.recovery.restores, 1);
    assert!(!out.recovery.degraded);
    assert_eq!(out.recovery.failures.len(), 1);
    assert!(out.recovery.failures[0].contains("fault injected"));
    assert_eq!(out.rank_stats[1].faults.crashes, 1);
    // The restoring attempt meters a Recovery phase on every rank.
    for rs in &out.rank_stats {
        assert!(rs.phases.contains_key("Recovery"), "rank {} has no Recovery", rs.rank);
    }

    // Bit-identical replay — far stronger than the 1%-MDL acceptance bar.
    assert_eq!(out.modules, clean.modules);
    assert_eq!(out.codelength.to_bits(), clean.codelength.to_bits());
    let rel = (out.codelength - clean.codelength).abs() / clean.codelength;
    assert!(rel < 0.01);
}

/// A crash late in the run restores a stage-2 checkpoint and resumes the
/// outer merge loop from the recorded level.
#[test]
fn crash_during_stage_two_resumes_the_outer_loop() {
    let g = lfr();
    let clean = DistributedInfomap::new(chaos_cfg()).run(&g);
    // Comm event 850 on rank 1 lands in the stage-2 levels (the whole
    // run spans ~870 events on this graph).
    let plan = FaultPlan::new(7).crash(1, 850);
    let out = DistributedInfomap::new(chaos_cfg())
        .run_with_plan(&g, Some(plan))
        .expect("stage-2 crashes are recoverable too");

    assert_eq!(out.recovery.attempts, 2);
    assert_eq!(out.recovery.restores, 1);
    assert_eq!(out.modules, clean.modules);
    assert_eq!(out.codelength.to_bits(), clean.codelength.to_bits());
    assert_eq!(out.trace, clean.trace);
}

#[test]
fn graceful_degradation_returns_the_best_checkpoint() {
    let g = lfr();
    let cfg = DistributedConfig {
        recovery: RecoveryConfig {
            checkpoint_every: 2,
            max_retries: 1,
            degrade_gracefully: true,
        },
        ..chaos_cfg()
    };
    // A repeating crash fires on every attempt: the run can never finish.
    let plan = FaultPlan::new(7).crash_repeating(1, 200);
    let out = DistributedInfomap::new(cfg)
        .run_with_plan(&g, Some(plan))
        .expect("degradation must turn exhaustion into a result");

    assert!(out.recovery.degraded);
    assert_eq!(out.recovery.attempts, 2);
    assert_eq!(out.recovery.failures.len(), 2);
    assert!(out.recovery.checkpoints_committed > 0);
    // The degraded clustering is the checkpointed one: already better
    // than the one-module partition by round 14, and fully populated.
    assert_eq!(out.modules.len(), g.num_vertices());
    assert!(out.codelength.is_finite());
    assert!(out.codelength <= out.one_level_codelength);
    assert!(out.num_modules() > 1);
}

#[test]
fn retry_exhaustion_surfaces_every_failure() {
    let g = lfr();
    let cfg = DistributedConfig {
        recovery: RecoveryConfig {
            checkpoint_every: 2,
            max_retries: 1,
            degrade_gracefully: false,
        },
        ..chaos_cfg()
    };
    let plan = FaultPlan::new(7).crash_repeating(1, 200);
    let err = DistributedInfomap::new(cfg)
        .run_with_plan(&g, Some(plan))
        .expect_err("without degradation, exhaustion is an error");
    assert!(err.contains("failed after 2 attempts"), "got `{err}`");
    assert!(err.contains("fault injected"), "got `{err}`");
}
