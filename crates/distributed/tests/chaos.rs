//! Deterministic chaos tests: seeded rank crashes against the
//! checkpoint/recovery driver. The headline property is the paper-quality
//! guarantee under failure — a crashed rank is retried from the last
//! round-boundary checkpoint and, because the stage cursor carries the
//! mid-stream RNG, the recovered run is *bit-identical* to the fault-free
//! one on the same seed.

use infomap_distributed::{
    CommPath, DistributedConfig, DistributedInfomap, FileCheckpointStore, RankProgram,
    RecoveryConfig, RecoveryReport,
};
use infomap_mpisim::{Comm, FaultPlan, RankStats, World};

use infomap_graph::generators::{self, LfrParams};

fn lfr() -> infomap_graph::Graph {
    generators::lfr_like(
        LfrParams {
            n: 400,
            ..Default::default()
        },
        11,
    )
    .0
}

fn chaos_cfg() -> DistributedConfig {
    DistributedConfig {
        nranks: 3,
        recovery: RecoveryConfig {
            checkpoint_every: 2,
            max_retries: 3,
            degrade_gracefully: false,
        },
        ..Default::default()
    }
}

// Crash events are calibrated against the comm-event stream of the
// *default* (compact) path on this graph: the whole run spans ~300
// events on rank 1, stage 1 ends near event 140, and the legacy path —
// which meters a standalone moves-allreduce, a separate MDL allreduce
// and two messages per boundary neighbor — spans ~495.

#[test]
fn fault_free_run_reports_no_recovery_activity() {
    let g = lfr();
    let out = DistributedInfomap::new(DistributedConfig {
        nranks: 3,
        ..Default::default()
    })
    .run(&g);
    assert_eq!(out.recovery.attempts, 1);
    assert_eq!(out.recovery.restores, 0);
    assert_eq!(out.recovery.checkpoints_committed, 0);
    assert!(!out.recovery.degraded);
    assert!(out.recovery.failures.is_empty());
    // With checkpoint_every = 0 (the default), the run must not even
    // meter a checkpoint or recovery phase.
    for rs in &out.rank_stats {
        assert!(
            rs.phases
                .keys()
                .all(|k| !k.contains("Checkpoint") && !k.contains("Recovery")),
            "rank {} metered {:?}",
            rs.rank,
            rs.phases.keys().collect::<Vec<_>>()
        );
        assert!(!rs.faults.any());
        assert_eq!(rs.total.checkpoint_bytes, 0);
    }
}

#[test]
fn checkpointing_without_faults_is_invisible_to_the_result() {
    let g = lfr();
    let plain = DistributedInfomap::new(DistributedConfig {
        nranks: 3,
        ..Default::default()
    })
    .run(&g);
    let ckpt = DistributedInfomap::new(chaos_cfg()).run(&g);

    // The checkpoint collective sits outside the algorithm's RNG and
    // message streams, so the clustering is bit-identical.
    assert_eq!(plain.modules, ckpt.modules);
    assert_eq!(plain.codelength.to_bits(), ckpt.codelength.to_bits());
    assert!(ckpt.recovery.checkpoints_committed > 0);
    assert_eq!(ckpt.recovery.restores, 0);
    // Checkpoint traffic is metered so the cost model can price it.
    let ckpt_bytes: u64 = ckpt
        .rank_stats
        .iter()
        .map(|r| r.total.checkpoint_bytes)
        .sum();
    assert!(ckpt_bytes > 0);
}

/// The acceptance scenario: kill one rank mid-stage-1, let the driver
/// restore the last checkpoint, and demand the exact fault-free answer.
#[test]
fn crash_mid_stage_one_recovers_bit_identically() {
    let g = lfr();
    let clean = DistributedInfomap::new(chaos_cfg()).run(&g);
    // Comm event 80 on rank 1 lands mid-stage-1, well past the first
    // round-2 checkpoint.
    let plan = FaultPlan::new(7).crash(1, 80);
    let out = DistributedInfomap::new(chaos_cfg())
        .run_with_plan(&g, Some(plan))
        .expect("the retry loop must absorb a single crash");

    assert_eq!(out.recovery.attempts, 2);
    assert_eq!(out.recovery.restores, 1);
    assert!(!out.recovery.degraded);
    assert_eq!(out.recovery.failures.len(), 1);
    assert!(out.recovery.failures[0].contains("fault injected"));
    assert_eq!(out.rank_stats[1].faults.crashes, 1);
    // The restoring attempt meters a Recovery phase on every rank.
    for rs in &out.rank_stats {
        assert!(
            rs.phases.contains_key("Recovery"),
            "rank {} has no Recovery",
            rs.rank
        );
    }

    // Bit-identical replay — far stronger than the 1%-MDL acceptance bar.
    assert_eq!(out.modules, clean.modules);
    assert_eq!(out.codelength.to_bits(), clean.codelength.to_bits());
    let rel = (out.codelength - clean.codelength).abs() / clean.codelength;
    assert!(rel < 0.01);
}

/// A crash late in the run restores a stage-2 checkpoint and resumes the
/// outer merge loop from the recorded level.
#[test]
fn crash_during_stage_two_resumes_the_outer_loop() {
    let g = lfr();
    let clean = DistributedInfomap::new(chaos_cfg()).run(&g);
    // Comm event 280 on rank 1 lands in the stage-2 levels (the whole
    // run spans ~300 events on this graph).
    let plan = FaultPlan::new(7).crash(1, 280);
    let out = DistributedInfomap::new(chaos_cfg())
        .run_with_plan(&g, Some(plan))
        .expect("stage-2 crashes are recoverable too");

    assert_eq!(out.recovery.attempts, 2);
    assert_eq!(out.recovery.restores, 1);
    assert_eq!(out.modules, clean.modules);
    assert_eq!(out.codelength.to_bits(), clean.codelength.to_bits());
    assert_eq!(out.trace, clean.trace);
}

#[test]
fn graceful_degradation_returns_the_best_checkpoint() {
    let g = lfr();
    let cfg = DistributedConfig {
        recovery: RecoveryConfig {
            checkpoint_every: 2,
            max_retries: 1,
            degrade_gracefully: true,
        },
        ..chaos_cfg()
    };
    // A repeating crash fires on every attempt: the run can never finish.
    // (Event 100 re-fires even on the restored attempt, whose remaining
    // event stream is shorter than the full run's.)
    let plan = FaultPlan::new(7).crash_repeating(1, 100);
    let out = DistributedInfomap::new(cfg)
        .run_with_plan(&g, Some(plan))
        .expect("degradation must turn exhaustion into a result");

    assert!(out.recovery.degraded);
    assert_eq!(out.recovery.attempts, 2);
    assert_eq!(out.recovery.failures.len(), 2);
    assert!(out.recovery.checkpoints_committed > 0);
    // The degraded clustering is the checkpointed one: already better
    // than the one-module partition by the crash round, and fully
    // populated.
    assert_eq!(out.modules.len(), g.num_vertices());
    assert!(out.codelength.is_finite());
    assert!(out.codelength <= out.one_level_codelength);
    assert!(out.num_modules() > 1);
}

#[test]
fn retry_exhaustion_surfaces_every_failure() {
    let g = lfr();
    let cfg = DistributedConfig {
        recovery: RecoveryConfig {
            checkpoint_every: 2,
            max_retries: 1,
            degrade_gracefully: false,
        },
        ..chaos_cfg()
    };
    let plan = FaultPlan::new(7).crash_repeating(1, 100);
    let err = DistributedInfomap::new(cfg)
        .run_with_plan(&g, Some(plan))
        .expect_err("without degradation, exhaustion is an error");
    assert!(err.contains("failed after 2 attempts"), "got `{err}`");
    assert!(err.contains("fault injected"), "got `{err}`");
}

fn path_cfg(path: CommPath) -> DistributedConfig {
    DistributedConfig {
        comm_path: path,
        ..chaos_cfg()
    }
}

/// The legacy path stays fully recoverable, and its fault-free run is
/// bit-identical to the compact default's — crashes in stage 1 (event
/// 200) and stage 2 (event 450 of ~495) both replay to the exact same
/// clustering.
#[test]
fn legacy_path_recovers_and_matches_compact() {
    let g = lfr();
    let compact = DistributedInfomap::new(path_cfg(CommPath::Compact)).run(&g);
    let clean = DistributedInfomap::new(path_cfg(CommPath::Legacy)).run(&g);
    assert_eq!(clean.modules, compact.modules);
    assert_eq!(clean.codelength.to_bits(), compact.codelength.to_bits());
    assert_eq!(clean.trace, compact.trace);

    for at_event in [200u64, 450] {
        let plan = FaultPlan::new(7).crash(1, at_event);
        let out = DistributedInfomap::new(path_cfg(CommPath::Legacy))
            .run_with_plan(&g, Some(plan))
            .expect("legacy crashes stay recoverable");
        assert_eq!(out.recovery.restores, 1, "crash at {at_event} did not fire");
        assert_eq!(out.modules, clean.modules);
        assert_eq!(out.codelength.to_bits(), clean.codelength.to_bits());
        assert_eq!(out.trace, clean.trace);
    }
}

/// Dropped messages starve a receive, fail the rank, and recover through
/// the checkpoint — bit-identically, on both communication paths. The
/// fate coins are seeded, so seed 9 deterministically drops a message on
/// the first attempt (forcing a restore) and lets a retry through on
/// both paths.
#[test]
fn dropped_messages_recover_bit_identically_on_both_paths() {
    let g = lfr();
    for path in [CommPath::Compact, CommPath::Legacy] {
        let cfg = DistributedConfig {
            recovery: RecoveryConfig {
                checkpoint_every: 2,
                max_retries: 6,
                degrade_gracefully: false,
            },
            ..path_cfg(path)
        };
        let clean = DistributedInfomap::new(cfg).run(&g);
        let plan = FaultPlan::new(9)
            .drop_messages(None, None, 0.004)
            .hang_timeout_ms(250);
        let out = DistributedInfomap::new(cfg)
            .run_with_plan(&g, Some(plan))
            .expect("retries must ride out the dropped messages");
        let drops: u64 = out.rank_stats.iter().map(|r| r.faults.msgs_dropped).sum();
        assert!(drops >= 1, "{path:?}: the plan injected no drop at all");
        assert!(out.recovery.restores >= 1, "{path:?}: no restore happened");
        assert_eq!(out.modules, clean.modules, "{path:?} diverged");
        assert_eq!(out.codelength.to_bits(), clean.codelength.to_bits());
    }
}

/// A straggler inflates metered compute but injects no failure: the
/// result is bit-identical with zero recovery activity on both paths,
/// and the overhead is attributed in the fault counters.
#[test]
fn stragglers_slow_but_never_diverge() {
    let g = lfr();
    for path in [CommPath::Compact, CommPath::Legacy] {
        let clean = DistributedInfomap::new(path_cfg(path)).run(&g);
        let plan = FaultPlan::new(3).straggler(1, 4);
        let out = DistributedInfomap::new(path_cfg(path))
            .run_with_plan(&g, Some(plan))
            .expect("a slow rank is not a failed rank");
        assert_eq!(out.recovery.restores, 0);
        assert_eq!(out.modules, clean.modules, "{path:?} diverged");
        assert_eq!(out.codelength.to_bits(), clean.codelength.to_bits());
        assert!(out.rank_stats[1].faults.straggler_units > 0);
        assert_eq!(out.rank_stats[0].faults.straggler_units, 0);
    }
}

/// The launcher's durable path in miniature: the same retry loop as
/// `run_with_plan`, but snapshots flow through the on-disk
/// [`FileCheckpointStore`] — binary codec, checked framing, two
/// generations — instead of live in-memory clones. Recovery must still
/// be bit-identical; a divergence here isolates the durable codec /
/// RNG-replay path from the process-management machinery around it.
#[test]
fn crash_recovers_bit_identically_through_the_file_store() {
    let g = lfr();
    let cfg = chaos_cfg();
    let clean = DistributedInfomap::new(cfg).run(&g);

    let dir = std::env::temp_dir().join(format!("dinf-filestore-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let p = cfg.nranks;
    let program = RankProgram::prepare(cfg, &g);
    let store = FileCheckpointStore::open(&dir, p, cfg.seed).expect("open store");
    let world = World::new(p).fault_plan(FaultPlan::new(7).crash(1, 80));
    let attempt = |comm: &mut Comm| program.run_rank(comm, &store);

    let mut attempts = 0;
    let out = loop {
        attempts += 1;
        assert!(attempts <= 3, "retry loop failed to converge");
        let outcome = world.run_with_outcomes(attempt);
        if !outcome.all_completed() {
            continue;
        }
        let mut results = outcome.into_results().expect("all ranks completed");
        let (modules, trace, codelength) = results.remove(0).expect("rank 0 result");
        let stats: Vec<RankStats> = (0..p)
            .map(|rank| RankStats {
                rank,
                ..Default::default()
            })
            .collect();
        break program.assemble_output(
            modules,
            trace,
            codelength,
            stats,
            RecoveryReport::default(),
        );
    };
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(attempts, 2, "the crash must cost exactly one retry");
    assert_eq!(out.modules, clean.modules, "file-store recovery diverged");
    assert_eq!(out.codelength.to_bits(), clean.codelength.to_bits());
}
