//! Static↔runtime schedule conformance (DESIGN.md §6 note 19): the
//! collective-kind trace a real rank produces must be a *word* of the
//! schedule automaton `spmd-lint --emit-schedule` infers for
//! `RankProgram::run_rank`. The static side over-approximates (any
//! branch, any loop count), so acceptance here proves the analyzer's
//! model of the program contains the program — and a rejection means
//! either the analyzer or the runtime drifted without the other.
//!
//! The schedule is emitted from the checked-in sources at test time (no
//! stale artifact can pass), then every rank of real 4-rank runs on both
//! comm paths is checked, plus the live in-`Comm` matcher variant that
//! panics at the first divergent collective.

use std::path::PathBuf;
use std::sync::Mutex;

use infomap_distributed::{CheckpointStore, CommPath, DistributedConfig, RankProgram};
use infomap_graph::generators::{self, LfrParams};
use infomap_mpisim::{Matcher, ScheduleSet, World};
use spmd_lint::{emit_workspace_schedule, Allowlist};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/distributed sits two levels below the root")
        .to_path_buf()
}

fn emitted_schedule() -> ScheduleSet {
    let root = workspace_root();
    let allow = Allowlist::load(&root.join("spmd-lint.toml")).expect("spmd-lint.toml must parse");
    let json = emit_workspace_schedule(&root, &allow, &[]).expect("schedule emission must succeed");
    ScheduleSet::parse(&json).expect("emitted schedule must compile to an automaton")
}

fn test_graph() -> infomap_graph::Graph {
    generators::lfr_like(
        LfrParams {
            n: 300,
            ..Default::default()
        },
        11,
    )
    .0
}

fn cfg(path: CommPath) -> DistributedConfig {
    DistributedConfig {
        nranks: 4,
        seed: 7,
        comm_path: path,
        ..Default::default()
    }
}

#[test]
fn four_rank_traces_are_words_of_the_static_schedule() {
    let set = emitted_schedule();
    let automaton = set
        .automaton("RankProgram::run_rank")
        .expect("spmd-lint.toml [[entry]] must cover RankProgram::run_rank");
    let g = test_graph();

    for path in [CommPath::Legacy, CommPath::Compact] {
        let program = RankProgram::prepare(cfg(path), &g);
        let store = CheckpointStore::new(4);
        let traces: Mutex<Vec<Vec<&'static str>>> = Mutex::new(vec![Vec::new(); 4]);

        let report = World::new(4).run(|comm| {
            comm.enable_schedule_trace();
            let out = program.run_rank(comm, &store);
            let trace = comm.take_schedule_trace().expect("recording was enabled");
            traces.lock().unwrap()[comm.rank()] = trace;
            out
        });
        assert_eq!(report.results.len(), 4);

        for (rank, trace) in traces.into_inner().unwrap().into_iter().enumerate() {
            assert!(
                trace.len() > 10,
                "{path:?} rank {rank}: implausibly short trace ({} stamps)",
                trace.len()
            );
            if let Err(e) = Matcher::new(automaton).accepts(&trace) {
                panic!(
                    "{path:?} rank {rank}: runtime trace of {} stamps is not a word \
                     of the static schedule: {e}",
                    trace.len()
                );
            }
        }
    }
}

#[test]
fn live_matcher_rides_along_a_real_run() {
    let set = emitted_schedule();
    let automaton = set
        .automaton("RankProgram::run_rank")
        .expect("entry present")
        .clone();
    let g = test_graph();
    let program = RankProgram::prepare(cfg(CommPath::Compact), &g);
    let store = CheckpointStore::new(4);

    let accepted: Mutex<Vec<bool>> = Mutex::new(vec![false; 4]);
    World::new(4).run(|comm| {
        // Any collective the automaton cannot explain panics inside
        // Comm::stamp, failing the rank (and this test) at the site.
        comm.install_schedule_matcher(Matcher::new(&automaton));
        let out = program.run_rank(comm, &store);
        let m = comm.take_schedule_matcher().expect("matcher installed");
        accepted.lock().unwrap()[comm.rank()] = m.at_accept();
        out
    });
    for (rank, ok) in accepted.into_inner().unwrap().into_iter().enumerate() {
        assert!(ok, "rank {rank}: run ended mid-schedule (no accept state)");
    }
}

#[test]
fn a_run_that_diverges_from_its_schedule_is_rejected() {
    // Sanity of the whole pipeline on a controlled program: emit a
    // schedule from fixture source with spmd-lint's own analysis, then
    // run a *different* real program under the live matcher — the first
    // unexplained collective must fail the rank.
    let src = r#"
fn run(c: &mut Comm) {
    c.barrier();
    c.allreduce_u64(1, ReduceOp::Sum);
}
"#;
    let files = vec![(PathBuf::from("src/lib.rs"), src.to_string())];
    let mut analysis = spmd_lint::Analysis::build([("fixture", files.as_slice())]);
    let json = spmd_lint::schedule::emit_schedule(
        &mut analysis,
        &[spmd_lint::EntrySpec {
            fn_name: "run".into(),
            crate_name: None,
        }],
    )
    .expect("fixture schedule emits");
    let set = ScheduleSet::parse(&json).expect("fixture schedule compiles");
    let automaton = set.automaton("run").expect("entry present").clone();

    // The schedule's own word is accepted...
    assert!(Matcher::new(&automaton)
        .accepts(&["barrier", "allreduce_u64"])
        .is_ok());

    // ...but a real 2-rank program that issues a second barrier where
    // the schedule demands an allreduce dies at that collective.
    let outcome = World::new(2).run_with_outcomes(|comm| {
        comm.install_schedule_matcher(Matcher::new(&automaton));
        comm.barrier();
        comm.barrier(); // divergence: not a word of the schedule
    });
    let failures: Vec<_> = outcome.failures();
    assert_eq!(failures.len(), 2, "both ranks should fail conformance");
    for (_, msg) in failures {
        assert!(
            msg.contains("schedule conformance"),
            "unexpected failure message: {msg}"
        );
    }
}
