//! Property tests for the distributed algorithm: on arbitrary community
//! graphs and world sizes, the run must terminate, produce a dense valid
//! assignment, beat the one-level codelength, stay deterministic, and
//! report a codelength consistent with an independent recomputation.

use proptest::prelude::*;

use infomap_core::map_equation::codelength_from_scratch;
use infomap_core::{FlowNetwork, Partitioning};
use infomap_distributed::{DistributedConfig, DistributedInfomap};
use infomap_graph::generators;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn distributed_run_is_valid_on_arbitrary_inputs(
        n in 40usize..160,
        p in 1usize..7,
        mu in 0.1f64..0.45,
        seed in 0u64..100,
    ) {
        let (g, _) = generators::lfr_like(
            generators::LfrParams {
                n,
                mu,
                c_min: 6,
                c_max: 30,
                k_min: 3,
                k_max: 20,
                ..Default::default()
            },
            seed,
        );
        prop_assume!(g.num_edges() > 0);
        let cfg = DistributedConfig { nranks: p, seed, ..Default::default() };
        let out = DistributedInfomap::new(cfg).run(&g);

        // Dense assignment covering every module id.
        prop_assert_eq!(out.modules.len(), g.num_vertices());
        let k = out.num_modules();
        prop_assert!(k >= 1);
        for c in 0..k as u32 {
            prop_assert!(out.modules.contains(&c), "module {c} empty");
        }

        // Beats (or ties) the trivial one-module partition.
        prop_assert!(out.codelength <= out.one_level_codelength + 1e-9);

        // Reported codelength matches an independent evaluation of the
        // returned assignment.
        let net = FlowNetwork::from_graph(g.clone());
        let node_term = Partitioning::singletons(&net).node_term();
        let scratch = codelength_from_scratch(&net, &out.modules, node_term);
        prop_assert!(
            (scratch - out.codelength).abs() < 1e-6,
            "reported {} vs recomputed {scratch}",
            out.codelength
        );

        // Determinism.
        let out2 = DistributedInfomap::new(cfg).run(&g);
        prop_assert_eq!(out.modules, out2.modules);
    }

    #[test]
    fn rank_count_does_not_change_validity(
        p in 1usize..9,
        seed in 0u64..50,
    ) {
        let (g, _) = generators::ring_of_cliques(5, 4, seed);
        let out = DistributedInfomap::new(DistributedConfig {
            nranks: p,
            seed,
            ..Default::default()
        })
        .run(&g);
        // Cliques are unambiguous: every rank count finds 5 modules.
        prop_assert_eq!(out.num_modules(), 5);
    }

    #[test]
    fn all_phase_counters_are_populated(p in 2usize..6, seed in 0u64..30) {
        let (g, _) = generators::lfr_like(
            generators::LfrParams { n: 120, ..Default::default() },
            seed,
        );
        let out = DistributedInfomap::new(DistributedConfig {
            nranks: p,
            seed,
            ..Default::default()
        })
        .run(&g);
        prop_assert_eq!(out.rank_stats.len(), p);
        for s in &out.rank_stats {
            prop_assert!(s.phases.contains_key("s1/FindBestModule"));
            prop_assert!(s.phases.contains_key("s1/Other"));
            prop_assert!(s.phases.contains_key("Merge"));
        }
    }
}
