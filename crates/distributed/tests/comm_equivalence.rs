//! Legacy-vs-compact communication-path equivalence (DESIGN.md §6.13):
//! the compact path must reproduce the legacy trajectory bit for bit —
//! same per-round MDL series, same move counts, same final assignment —
//! while metering strictly less traffic. The bit-identity half is the
//! acceptance criterion that lets `perf_comm` benchmark the two paths
//! against each other on the very same runs.

use infomap_distributed::{CommPath, DistributedConfig, DistributedInfomap, DistributedOutput};
use infomap_graph::generators::{self, chung_lu, power_law_degrees, LfrParams};
use infomap_graph::Graph;

fn hub_graph() -> Graph {
    // Scale-free with genuine hubs: delegate copies, ghosts, and heavy
    // proposal traffic — the election path's worst case.
    let degs = power_law_degrees(600, 2.1, 2, 120, 11);
    chung_lu(&degs, 12)
}

fn flat_graph() -> Graph {
    generators::lfr_like(
        LfrParams {
            n: 400,
            ..Default::default()
        },
        11,
    )
    .0
}

fn run(g: &Graph, p: usize, path: CommPath) -> DistributedOutput {
    let cfg = DistributedConfig {
        nranks: p,
        seed: 7,
        comm_path: path,
        ..Default::default()
    };
    DistributedInfomap::new(cfg).run(g)
}

/// Total metered traffic of a run: point-to-point bytes plus both sides
/// of every collective, summed over ranks.
fn total_bytes(out: &DistributedOutput) -> u64 {
    out.rank_stats
        .iter()
        .map(|r| r.total.p2p_bytes_sent + r.total.collective_bytes + r.total.collective_bytes_recv)
        .sum()
}

fn assert_bit_identical(a: &DistributedOutput, b: &DistributedOutput, what: &str) {
    assert_eq!(a.modules, b.modules, "{what}: assignments differ");
    assert_eq!(
        a.codelength.to_bits(),
        b.codelength.to_bits(),
        "{what}: codelength bits differ"
    );
    assert_eq!(a.trace, b.trace, "{what}: per-round MDL trajectory differs");
}

#[test]
fn compact_path_is_bit_identical_and_cheaper_across_rank_counts() {
    for (g, name) in [(hub_graph(), "hubs"), (flat_graph(), "flat")] {
        for p in [2usize, 4, 6] {
            let legacy = run(&g, p, CommPath::Legacy);
            let compact = run(&g, p, CommPath::Compact);
            assert_bit_identical(&legacy, &compact, &format!("{name} p={p}"));
            let (lb, cb) = (total_bytes(&legacy), total_bytes(&compact));
            assert!(
                cb < lb,
                "{name} p={p}: compact metered {cb} bytes >= legacy {lb}"
            );
        }
    }
}

#[test]
fn compact_savings_grow_with_rank_count() {
    // The legacy election's receive side replicates every proposal p
    // times; the owner reduction removes that factor, so the byte ratio
    // must improve as ranks are added.
    let g = hub_graph();
    let ratio = |p: usize| {
        let legacy = run(&g, p, CommPath::Legacy);
        let compact = run(&g, p, CommPath::Compact);
        assert_bit_identical(&legacy, &compact, &format!("p={p}"));
        total_bytes(&compact) as f64 / total_bytes(&legacy) as f64
    };
    let r2 = ratio(2);
    let r8 = ratio(8);
    assert!(
        r8 < r2,
        "byte ratio did not improve with rank count: p=2 -> {r2:.3}, p=8 -> {r8:.3}"
    );
}

#[test]
fn compact_is_the_default_and_codec_traffic_is_metered() {
    let g = flat_graph();
    let out = DistributedInfomap::new(DistributedConfig {
        nranks: 4,
        seed: 7,
        ..Default::default()
    })
    .run(&g);
    let explicit = run(&g, 4, CommPath::Compact);
    assert_bit_identical(&out, &explicit, "default vs explicit compact");
    // The compact path charges every encoded/decoded byte so the cost
    // model can price codec CPU; the legacy path must charge none.
    let codec: u64 = out.rank_stats.iter().map(|r| r.total.codec_bytes).sum();
    assert!(codec > 0, "compact run metered no codec bytes");
    let legacy = run(&g, 4, CommPath::Legacy);
    let legacy_codec: u64 = legacy.rank_stats.iter().map(|r| r.total.codec_bytes).sum();
    assert_eq!(legacy_codec, 0, "legacy run charged codec bytes");
}
