//! Determinism regression for the hot-path kernel rewrite (DESIGN.md
//! §6.12): a seeded 4-rank distributed run must be reproducible to the
//! bit — across invocations, across best-move kernels (the stamped
//! accumulator vs the pre-rewrite legacy scan), and against a recorded
//! golden fingerprint.
//!
//! The golden file (`tests/golden_determinism_p4.txt`) is recorded by the
//! first run in a given environment and compared from then on. It cannot
//! be pre-committed from an arbitrary machine because the fingerprint
//! depends on the `rand` implementation behind `StdRng`; once a run on
//! the canonical toolchain has produced it, committing the file pins the
//! trajectory for everyone (any silent tie-break or accumulation-order
//! change then fails this test).

use infomap_distributed::{DistributedConfig, DistributedInfomap, MoveKernel};
use infomap_graph::generators::{chung_lu, power_law_degrees};
use infomap_graph::Graph;

const SEED: u64 = 7;
const NRANKS: usize = 4;

fn test_graph() -> Graph {
    // Scale-free with genuine hubs, so delegate copies, ghosts, and the
    // min-label rule are all exercised.
    let degs = power_law_degrees(600, 2.1, 2, 120, 11);
    chung_lu(&degs, 12)
}

/// The full bit-level trajectory of one run: every per-round MDL (as raw
/// bits) of every stage, the total move count, the final codelength bits,
/// and the final assignment.
#[derive(PartialEq, Eq, Debug)]
struct Fingerprint {
    mdl_bits: Vec<u64>,
    total_moves: u64,
    codelength_bits: u64,
    modules: Vec<u32>,
}

fn run(kernel: MoveKernel) -> Fingerprint {
    let cfg = DistributedConfig {
        nranks: NRANKS,
        seed: SEED,
        kernel,
        ..Default::default()
    };
    let out = DistributedInfomap::new(cfg).run(&test_graph());
    Fingerprint {
        mdl_bits: out
            .trace
            .iter()
            .flat_map(|t| t.mdl_series.iter().map(|m| m.to_bits()))
            .collect(),
        total_moves: out.trace.iter().map(|t| t.moves).sum(),
        codelength_bits: out.codelength.to_bits(),
        modules: out.modules,
    }
}

impl Fingerprint {
    /// Stable text encoding, one field per line; the assignment is folded
    /// through FNV-1a so the golden file stays small.
    fn encode(&self) -> String {
        let mut h: u64 = 0xcbf29ce484222325;
        for &m in &self.modules {
            h = (h ^ m as u64).wrapping_mul(0x100000001b3);
        }
        let mdl_hex: Vec<String> = self.mdl_bits.iter().map(|b| format!("{b:016x}")).collect();
        format!(
            "mdl_series_bits: {}\ntotal_moves: {}\ncodelength_bits: {:016x}\nassignment_fnv: {:016x}\n",
            mdl_hex.join(","),
            self.total_moves,
            self.codelength_bits,
            h
        )
    }
}

#[test]
fn seeded_run_is_bit_identical_across_invocations() {
    let a = run(MoveKernel::Stamped);
    let b = run(MoveKernel::Stamped);
    assert_eq!(a, b, "two invocations of the same seeded run diverged");
}

#[test]
fn stamped_and_legacy_scan_kernels_agree_bitwise() {
    // The legacy scan IS the pre-rewrite algorithm; bit-equality here is
    // the "identical before vs. after" acceptance criterion.
    let stamped = run(MoveKernel::Stamped);
    let scan = run(MoveKernel::LegacyScan);
    assert_eq!(
        stamped, scan,
        "stamped kernel diverged from the legacy scan (tie-break or accumulation-order change?)"
    );
}

#[test]
fn seeded_run_matches_recorded_golden() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden_determinism_p4.txt"
    );
    let encoded = run(MoveKernel::Stamped).encode();
    match std::fs::read_to_string(path) {
        Ok(golden) => assert_eq!(
            golden, encoded,
            "run no longer matches the recorded golden at {path}; if the change in \
             trajectory is intended and reviewed, delete the file to re-record"
        ),
        Err(_) => {
            std::fs::write(path, &encoded).expect("record golden fingerprint");
            eprintln!("recorded new golden fingerprint at {path}");
        }
    }
}
