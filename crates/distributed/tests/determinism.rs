//! Determinism regression for the hot-path kernel rewrite (DESIGN.md
//! §6.12) and the slice-parallel sweep (§6 note 16): a seeded 4-rank
//! distributed run must be reproducible to the bit — across invocations,
//! across best-move kernels (the stamped accumulator vs the pre-rewrite
//! legacy scan), across every intra-rank thread count, and against
//! recorded golden fingerprints.
//!
//! The golden files (`tests/golden_determinism_p4.txt`,
//! `tests/golden_determinism_threads.txt`) are recorded by the first run
//! in a given environment and compared from then on. They cannot be
//! pre-committed from an arbitrary machine because the fingerprint
//! depends on the `rand` implementation behind `StdRng`; once a run on
//! the canonical toolchain has produced it, committing the file pins the
//! trajectory for everyone (any silent tie-break or accumulation-order
//! change then fails this test).

use infomap_distributed::{DistributedConfig, DistributedInfomap, MoveKernel};
use infomap_graph::generators::{chung_lu, power_law_degrees};
use infomap_graph::Graph;

const SEED: u64 = 7;
const NRANKS: usize = 4;

fn test_graph() -> Graph {
    // Scale-free with genuine hubs, so delegate copies, ghosts, and the
    // min-label rule are all exercised.
    let degs = power_law_degrees(600, 2.1, 2, 120, 11);
    chung_lu(&degs, 12)
}

/// The full bit-level trajectory of one run: every per-round MDL (as raw
/// bits) of every stage, the per-stage move log, the final codelength
/// bits, and the final assignment.
#[derive(PartialEq, Eq, Debug)]
struct Fingerprint {
    mdl_bits: Vec<u64>,
    moves_log: Vec<u64>,
    codelength_bits: u64,
    modules: Vec<u32>,
}

fn run_with(graph: &Graph, kernel: MoveKernel, seed: u64, threads: usize) -> Fingerprint {
    let cfg = DistributedConfig {
        nranks: NRANKS,
        seed,
        kernel,
        threads,
        ..Default::default()
    };
    let out = DistributedInfomap::new(cfg).run(graph);
    Fingerprint {
        mdl_bits: out
            .trace
            .iter()
            .flat_map(|t| t.mdl_series.iter().map(|m| m.to_bits()))
            .collect(),
        moves_log: out.trace.iter().map(|t| t.moves).collect(),
        codelength_bits: out.codelength.to_bits(),
        modules: out.modules,
    }
}

fn run(kernel: MoveKernel) -> Fingerprint {
    run_with(&test_graph(), kernel, SEED, 1)
}

impl Fingerprint {
    /// Stable text encoding, one field per line; the assignment is folded
    /// through FNV-1a so the golden file stays small.
    fn encode(&self) -> String {
        let mut h: u64 = 0xcbf29ce484222325;
        for &m in &self.modules {
            h = (h ^ m as u64).wrapping_mul(0x100000001b3);
        }
        let mdl_hex: Vec<String> = self.mdl_bits.iter().map(|b| format!("{b:016x}")).collect();
        let moves: Vec<String> = self.moves_log.iter().map(|m| m.to_string()).collect();
        format!(
            "mdl_series_bits: {}\nmoves_log: {}\ncodelength_bits: {:016x}\nassignment_fnv: {:016x}\n",
            mdl_hex.join(","),
            moves.join(","),
            self.codelength_bits,
            h
        )
    }
}

#[test]
fn seeded_run_is_bit_identical_across_invocations() {
    let a = run(MoveKernel::Stamped);
    let b = run(MoveKernel::Stamped);
    assert_eq!(a, b, "two invocations of the same seeded run diverged");
}

#[test]
fn stamped_and_legacy_scan_kernels_agree_bitwise() {
    // The legacy scan IS the pre-rewrite algorithm; bit-equality here is
    // the "identical before vs. after" acceptance criterion.
    let stamped = run(MoveKernel::Stamped);
    let scan = run(MoveKernel::LegacyScan);
    assert_eq!(
        stamped, scan,
        "stamped kernel diverged from the legacy scan (tie-break or accumulation-order change?)"
    );
}

/// The two stand-ins of the thread-invariance matrix: a flat-degree
/// "1d"-style graph (degrees far below the delegate threshold, so the
/// sweep is pure owned moves) and the hub-heavy scale-free graph (real
/// delegates, ghosts, and the min-label rule in play).
fn thread_standins() -> Vec<(&'static str, Graph)> {
    let flat = chung_lu(&vec![8usize; 500], 21);
    vec![("1d-flat", flat), ("delegate-hub", test_graph())]
}

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const THREAD_SEEDS: [u64; 2] = [3, 11];

#[test]
fn thread_counts_are_bit_identical() {
    // The §6 note 16 contract: t is a wall-clock knob, never a results
    // knob. Every (stand-in, seed) pair must produce byte-identical MDL
    // series, move logs, and final assignments for t ∈ {1, 2, 4, 8}.
    for (name, graph) in &thread_standins() {
        for &seed in &THREAD_SEEDS {
            let base = run_with(graph, MoveKernel::Stamped, seed, 1);
            for &t in &THREAD_COUNTS[1..] {
                let got = run_with(graph, MoveKernel::Stamped, seed, t);
                assert_eq!(
                    base.encode(),
                    got.encode(),
                    "stand-in {name} seed {seed}: threads={t} diverged from threads=1"
                );
            }
        }
    }
}

#[test]
fn threaded_runs_match_recorded_golden() {
    // Record-once golden over the full stand-in × seed matrix (at t = 4;
    // `thread_counts_are_bit_identical` pins the other thread counts to
    // the same bytes). Re-recording requires deleting the file.
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden_determinism_threads.txt"
    );
    let mut encoded = String::new();
    for (name, graph) in &thread_standins() {
        for &seed in &THREAD_SEEDS {
            let fp = run_with(graph, MoveKernel::Stamped, seed, 4);
            encoded.push_str(&format!("[{name} seed={seed}]\n{}", fp.encode()));
        }
    }
    match std::fs::read_to_string(path) {
        Ok(golden) => assert_eq!(
            golden, encoded,
            "threaded run no longer matches the recorded golden at {path}; if the change \
             in trajectory is intended and reviewed, delete the file to re-record"
        ),
        Err(_) => {
            std::fs::write(path, &encoded).expect("record golden fingerprint");
            eprintln!("recorded new golden fingerprint at {path}");
        }
    }
}

#[test]
fn seeded_run_matches_recorded_golden() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden_determinism_p4.txt"
    );
    let encoded = run(MoveKernel::Stamped).encode();
    match std::fs::read_to_string(path) {
        Ok(golden) => assert_eq!(
            golden, encoded,
            "run no longer matches the recorded golden at {path}; if the change in \
             trajectory is intended and reviewed, delete the file to re-record"
        ),
        Err(_) => {
            std::fs::write(path, &encoded).expect("record golden fingerprint");
            eprintln!("recorded new golden fingerprint at {path}");
        }
    }
}
