//! Property tests for the compact wire codecs: every batch codec must
//! roundtrip arbitrary message batches *exactly* — including NaN, ±inf,
//! -0.0 and subnormal f64 payloads, unsorted and wrapping ids — because
//! the compact communication path's bit-identity guarantee rests on the
//! decoder reproducing the encoder's input bit for bit.

use proptest::prelude::*;

use infomap_distributed::codec;
use infomap_distributed::messages::{
    DelegateProposal, ModuleContribution, ModuleInfoMsg, VertexUpdate,
};

/// f64 equality by bit pattern: NaN == NaN, +0.0 != -0.0.
fn bits_eq(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

fn info_eq(a: &ModuleInfoMsg, b: &ModuleInfoMsg) -> bool {
    a.mod_id == b.mod_id
        && bits_eq(a.flow, b.flow)
        && bits_eq(a.exit, b.exit)
        && a.members == b.members
        && a.is_sent == b.is_sent
}

/// Build a `ModuleInfoMsg` from five raw words. Using raw words (rather
/// than typed strategies) guarantees every f64 bit pattern is reachable.
fn info_from(w: &[u64]) -> ModuleInfoMsg {
    ModuleInfoMsg {
        mod_id: w[0],
        flow: f64::from_bits(w[1]),
        exit: f64::from_bits(w[2]),
        members: w[3] as u32,
        is_sent: w[4] & 1 == 1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn updates_roundtrip_exactly(words in collection::vec(any::<u64>(), 0..120)) {
        let ups: Vec<VertexUpdate> = words
            .chunks_exact(2)
            .map(|w| VertexUpdate { vertex: w[0] as u32, module: w[1] })
            .collect();
        let mut buf = Vec::new();
        codec::encode_updates(&mut buf, &ups);
        let mut pos = 0;
        let back = codec::decode_updates(&buf, &mut pos);
        prop_assert_eq!(pos, buf.len());
        prop_assert_eq!(back, ups);
    }

    #[test]
    fn infos_roundtrip_exactly(words in collection::vec(any::<u64>(), 0..200)) {
        let infos: Vec<ModuleInfoMsg> = words.chunks_exact(5).map(info_from).collect();
        let mut buf = Vec::new();
        codec::encode_infos(&mut buf, &infos);
        let mut pos = 0;
        let back = codec::decode_infos(&buf, &mut pos);
        prop_assert_eq!(pos, buf.len());
        prop_assert_eq!(back.len(), infos.len());
        for (a, b) in back.iter().zip(&infos) {
            prop_assert!(info_eq(a, b), "{a:?} != {b:?}");
        }
    }

    #[test]
    fn contribs_roundtrip_exactly(words in collection::vec(any::<u64>(), 0..200)) {
        let contribs: Vec<ModuleContribution> = words
            .chunks_exact(5)
            .map(|w| ModuleContribution {
                mod_id: w[0],
                // Mix arbitrary bit patterns with exact zeros so the
                // zero-payload-elision bitmap path is exercised.
                flow: if w[1] % 3 == 0 { 0.0 } else { f64::from_bits(w[1]) },
                exit: if w[2] % 3 == 0 { 0.0 } else { f64::from_bits(w[2]) },
                members: if w[3] % 3 == 0 { 0 } else { w[3] as u32 },
                retract: w[4] & 1 == 1,
            })
            .collect();
        let mut buf = Vec::new();
        codec::encode_contribs(&mut buf, &contribs);
        let mut pos = 0;
        let back = codec::decode_contribs(&buf, &mut pos);
        prop_assert_eq!(pos, buf.len());
        prop_assert_eq!(back.len(), contribs.len());
        for (a, b) in back.iter().zip(&contribs) {
            prop_assert!(
                a.mod_id == b.mod_id
                    && bits_eq(a.flow, b.flow)
                    && bits_eq(a.exit, b.exit)
                    && a.members == b.members
                    && a.retract == b.retract,
                "{a:?} != {b:?}"
            );
        }
    }

    #[test]
    fn proposals_roundtrip_exactly(words in collection::vec(any::<u64>(), 0..320)) {
        // Confine `to_module` and the info payloads to small spaces so
        // batches repeat (to_module, identical-info) pairs — the case the
        // stateful has-info cache elides — while `delta` and the rest stay
        // fully arbitrary.
        let props: Vec<DelegateProposal> = words
            .chunks_exact(8)
            .map(|w| DelegateProposal {
                delegate: w[0] as u32,
                to_module: w[1] % 6,
                delta: f64::from_bits(w[2]),
                proposer: w[3] as u32,
                target_info: ModuleInfoMsg {
                    mod_id: w[1] % 6,
                    flow: [0.25, -0.0, f64::NAN, f64::from_bits(w[4])][(w[5] % 4) as usize],
                    exit: [0.5, 0.0, f64::from_bits(w[6])][(w[7] % 3) as usize],
                    members: (w[4] % 4) as u32,
                    is_sent: w[6] & 1 == 1,
                },
            })
            .collect();
        let mut buf = Vec::new();
        codec::encode_proposals(&mut buf, &props);
        let mut pos = 0;
        let back = codec::decode_proposals(&buf, &mut pos);
        prop_assert_eq!(pos, buf.len());
        prop_assert_eq!(back.len(), props.len());
        for (a, b) in back.iter().zip(&props) {
            prop_assert!(
                a.delegate == b.delegate
                    && a.to_module == b.to_module
                    && bits_eq(a.delta, b.delta)
                    && a.proposer == b.proposer
                    && info_eq(&a.target_info, &b.target_info),
                "{a:?} != {b:?}"
            );
        }
    }

    #[test]
    fn pairs_roundtrip_exactly(words in collection::vec(any::<u64>(), 0..120)) {
        let pairs: Vec<(u32, u32)> = words
            .chunks_exact(2)
            .map(|w| (w[0] as u32, w[1] as u32))
            .collect();
        let mut buf = Vec::new();
        codec::encode_pairs(&mut buf, &pairs);
        let mut pos = 0;
        let back = codec::decode_pairs(&buf, &mut pos);
        prop_assert_eq!(pos, buf.len());
        prop_assert_eq!(back, pairs);
    }

    #[test]
    fn fused_batches_roundtrip_in_sequence(
        words in collection::vec(any::<u64>(), 0..150),
        header in (any::<u64>(), any::<u64>()),
    ) {
        // The wire packets fuse header varints + several batches into one
        // buffer; decoding must consume each section exactly where the
        // encoder left it.
        let ups: Vec<VertexUpdate> = words
            .chunks_exact(7)
            .map(|w| VertexUpdate { vertex: w[5] as u32, module: w[6] })
            .collect();
        let infos: Vec<ModuleInfoMsg> = words.chunks_exact(7).map(info_from).collect();
        let mut buf = Vec::new();
        codec::put_uvarint(&mut buf, header.0);
        codec::put_uvarint(&mut buf, header.1);
        codec::encode_updates(&mut buf, &ups);
        codec::encode_infos(&mut buf, &infos);
        let mut pos = 0;
        prop_assert_eq!(codec::get_uvarint(&buf, &mut pos), header.0);
        prop_assert_eq!(codec::get_uvarint(&buf, &mut pos), header.1);
        prop_assert_eq!(codec::decode_updates(&buf, &mut pos), ups);
        let back = codec::decode_infos(&buf, &mut pos);
        prop_assert_eq!(pos, buf.len());
        for (a, b) in back.iter().zip(&infos) {
            prop_assert!(info_eq(a, b), "{a:?} != {b:?}");
        }
    }
}
