//! Orchestration of the full distributed algorithm (paper Algorithm 2):
//! preprocessing, stage-1 clustering with delegates, distributed merging
//! (§3.5), and repeated stage-2 clustering without delegates until the MDL
//! stops improving.

use std::collections::{BTreeMap, HashMap, HashSet};

use infomap_core::plogp;
use infomap_graph::snapshot::{owned_row_count, SnapshotHeader, SnapshotKind};
use infomap_graph::{GraphStore, VertexId};
use infomap_mpisim::{Comm, FaultPlan, RankStats, ReduceOp, World};
use infomap_partition::{delegates_from_degrees, plan_rebalance, shard_rank_arcs, Arc, Partition};

use crate::checkpoint::{CheckpointStore, RankSnapshot, SnapshotPos, SnapshotStore};
use crate::codec;
use crate::config::{CommPath, DistributedConfig};
use crate::messages::{AssignmentReply, MergedArc, MergedFlow};
use crate::rounds::{cluster_stage_recoverable, StageCursor, StageOutcome};
use crate::state::{assemble, build_1d_state, build_stage1_states, LocalState, VertexKind};

/// Trace entry for one clustering stage at one merge level.
#[derive(Clone, Debug, PartialEq)]
pub struct StageTrace {
    /// 1 = clustering with delegates, 2 = without.
    pub stage: u8,
    /// Merge level (0 = original graph).
    pub level: usize,
    /// Exact global MDL after the stage.
    pub codelength: f64,
    /// Non-empty modules after the stage.
    pub num_modules: usize,
    /// Vertices of the level graph before/after merging.
    pub vertices_before: usize,
    pub vertices_after: usize,
    /// Synchronized inner rounds executed.
    pub inner_iterations: usize,
    /// Total vertex moves in the stage.
    pub moves: u64,
    /// MDL after every synchronized round (index 0 = before any move).
    pub mdl_series: Vec<f64>,
}

/// Everything a distributed run produces.
#[derive(Clone, Debug)]
pub struct DistributedOutput {
    /// Final module id per original vertex (dense, 0-based).
    pub modules: Vec<u32>,
    /// Final exact global MDL in bits.
    pub codelength: f64,
    /// Codelength of the trivial one-module partition.
    pub one_level_codelength: f64,
    /// Per-stage trace (stage 1 first, then one entry per stage-2 level).
    pub trace: Vec<StageTrace>,
    /// Per-rank metering counters (for the cost model). With retries,
    /// every attempt's traffic and work is accumulated here — failed work
    /// costs real time too.
    pub rank_stats: Vec<RankStats>,
    /// World size the run used.
    pub nranks: usize,
    /// What fault recovery did (all zeros/false on a fault-free run).
    pub recovery: RecoveryReport,
}

/// Summary of the retry loop of a fault-tolerant run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RecoveryReport {
    /// World executions, including the successful one (1 = no failure).
    pub attempts: usize,
    /// Attempts that started from a restored checkpoint.
    pub restores: usize,
    /// Rank-snapshot commits across all attempts.
    pub checkpoints_committed: u64,
    /// True when retries were exhausted and the output is the best
    /// checkpointed clustering instead of a completed run.
    pub degraded: bool,
    /// Per-attempt root-cause panic messages of failed ranks.
    pub failures: Vec<String>,
}

impl DistributedOutput {
    /// Number of detected modules.
    pub fn num_modules(&self) -> usize {
        self.modules
            .iter()
            .copied()
            .max()
            .map(|m| m as usize + 1)
            .unwrap_or(0)
    }

    /// The concatenated MDL series across all stages (Figure 4's y-axis).
    pub fn mdl_series(&self) -> Vec<f64> {
        self.trace
            .iter()
            .flat_map(|t| t.mdl_series.iter().copied())
            .collect()
    }
}

/// The distributed Infomap driver.
#[derive(Clone, Debug)]
pub struct DistributedInfomap {
    cfg: DistributedConfig,
}

/// Outcome of [`distributed_merge`] on one rank.
struct MergeOutcome {
    state: LocalState,
    /// Old module id → dense new vertex id (identical on all ranks).
    dense: HashMap<u64, u32>,
}

impl DistributedInfomap {
    pub fn new(cfg: DistributedConfig) -> Self {
        assert!(cfg.nranks > 0);
        DistributedInfomap { cfg }
    }

    /// Run the full algorithm on `graph` over the simulated cluster. The
    /// input is any [`GraphStore`] — the in-memory CSR or a (paged)
    /// snapshot — and the trajectory is bit-identical across stores.
    pub fn run<G: GraphStore + ?Sized>(&self, graph: &G) -> DistributedOutput {
        self.run_with_plan(graph, None)
            .expect("a fault-free distributed run cannot fail")
    }

    /// Run the full algorithm under an optional [`FaultPlan`].
    ///
    /// With a plan, the driver becomes a retry loop: each world execution
    /// that ends with failed ranks is re-run (up to
    /// `cfg.recovery.max_retries` times), restoring the last committed
    /// checkpoint when one exists — and, because the fault state lives on
    /// the [`World`], one-shot crashes stay fired across attempts. When
    /// retries are exhausted, the result is either the best checkpointed
    /// clustering (`cfg.recovery.degrade_gracefully`) or an error listing
    /// every root-cause failure.
    pub fn run_with_plan<G: GraphStore + ?Sized>(
        &self,
        graph: &G,
        plan: Option<FaultPlan>,
    ) -> Result<DistributedOutput, String> {
        let cfg = self.cfg;
        let p = cfg.nranks;
        let program = RankProgram::prepare(cfg, graph);
        let store = CheckpointStore::new(p);

        let with_faults = plan.as_ref().is_some_and(|pl| !pl.is_empty());
        let mut world = World::new(p);
        if let Some(plan) = plan {
            world = world.fault_plan(plan);
        }
        let max_attempts = if with_faults {
            1 + cfg.recovery.max_retries
        } else {
            1
        };

        let attempt = |comm: &mut Comm| program.run_rank(comm, &store);

        let mut stats: Vec<RankStats> = (0..p)
            .map(|rank| RankStats {
                rank,
                ..Default::default()
            })
            .collect();
        let mut recovery = RecoveryReport::default();
        loop {
            recovery.attempts += 1;
            if recovery.attempts > 1 && store.agreed_pos().is_some() {
                recovery.restores += 1;
            }
            let outcome = world.run_with_outcomes(attempt);
            for (rank, s) in outcome.stats.iter().enumerate() {
                stats[rank].absorb(s);
            }
            if outcome.all_completed() {
                recovery.checkpoints_committed = SnapshotStore::checkpoints_committed(&store);
                let mut results = outcome.into_results().expect("all ranks completed");
                let (modules, trace, codelength) =
                    results.remove(0).expect("rank 0 must report results");
                return Ok(program.assemble_output(modules, trace, codelength, stats, recovery));
            }
            for (rank, msg) in outcome.failures() {
                recovery
                    .failures
                    .push(format!("attempt {}: rank {rank}: {msg}", recovery.attempts));
            }
            if recovery.attempts >= max_attempts {
                recovery.checkpoints_committed = SnapshotStore::checkpoints_committed(&store);
                if cfg.recovery.degrade_gracefully {
                    recovery.degraded = true;
                    return Ok(degraded_output(
                        &store,
                        p,
                        program.one_level,
                        program.original_n,
                        stats,
                        recovery,
                    ));
                }
                return Err(format!(
                    "distributed run failed after {} attempts: {}",
                    recovery.attempts,
                    recovery.failures.join("; ")
                ));
            }
        }
    }
}

/// Everything the per-rank SPMD program needs besides its communicator and
/// snapshot store: the partitioned input and the shared scalars derived
/// from the graph. Prepared identically (and deterministically) by every
/// process of a multi-process run, or once for all ranks of a thread run.
pub struct RankProgram {
    pub cfg: DistributedConfig,
    /// Initial stage-1 states for ranks `states_from ..
    /// states_from + states.len()`. The monolithic [`RankProgram::prepare`]
    /// builds all ranks (`states_from == 0`); the shard-mode
    /// [`RankProgram::prepare_shard`] builds only the calling rank's.
    pub states: Vec<LocalState>,
    /// Rank of `states[0]` (see `states`).
    pub states_from: usize,
    /// Replicated delegate vertex ids.
    pub delegates: Vec<u32>,
    /// Σ plogp(p_v) over all vertices (the MDL's constant node term).
    pub node_term: f64,
    /// Codelength of the trivial one-module partition.
    pub one_level: f64,
    /// Vertices of the original graph.
    pub original_n: usize,
}

impl RankProgram {
    /// Partition the graph and precompute the shared scalars. Everything
    /// here is a pure function of `(cfg, graph)`, so independently
    /// preparing processes agree bit-for-bit.
    pub fn prepare<G: GraphStore + ?Sized>(cfg: DistributedConfig, graph: &G) -> RankProgram {
        let p = cfg.nranks;
        let partition = Partition::delegate(graph, p, cfg.threshold, cfg.rebalance);
        let states = build_stage1_states(graph, &partition);
        let inv_two_w = 1.0 / (2.0 * graph.total_weight());
        let node_term: f64 = (0..graph.num_vertices() as VertexId)
            .map(|v| plogp(graph.strength(v) * inv_two_w))
            .sum();
        RankProgram {
            cfg,
            delegates: partition.delegates.clone(),
            states,
            states_from: 0,
            node_term,
            one_level: -node_term,
            original_n: graph.num_vertices(),
        }
    }

    /// Shard-mode preparation: rebuild the calling rank's stage-1 state
    /// from its snapshot shard alone, using collectives for every global
    /// fact the monolithic [`RankProgram::prepare`] reads off the whole
    /// graph. Each step reproduces its monolithic counterpart bit for bit:
    ///
    /// 1. **Delegates** — allgatherv the per-rank owned degree counters,
    ///    scatter back to vertex order, and run the same
    ///    [`delegates_from_degrees`] rule every rank now agrees on.
    /// 2. **Arcs** — [`shard_rank_arcs`] rebuilds this rank's
    ///    delegate-partition arc list (and movable set) from owned rows.
    /// 3. **Rebalance** — allgatherv `(load, movable)` summaries, replay
    ///    the pure [`plan_rebalance`], ship surplus arcs with one
    ///    alltoallv, and append received buckets in source-rank order —
    ///    the global pool order the monolithic pass uses.
    /// 4. **Ghosts** — alltoallv observed foreign low-degree endpoints to
    ///    their owners; subscriber lists build rank-ascending, matching
    ///    the monolithic presence map.
    /// 5. **Flows** — allgatherv owned strengths and fold the node term in
    ///    global vertex order, the exact summation order `prepare` uses.
    ///
    /// The store only ever answers queries for this rank's own rows, so a
    /// demand-paged shard never touches remote data.
    pub fn prepare_shard<G: GraphStore + ?Sized>(
        cfg: DistributedConfig,
        header: &SnapshotHeader,
        store: &G,
        comm: &mut Comm,
    ) -> RankProgram {
        let p = cfg.nranks;
        let rank = comm.rank();
        assert_eq!(
            header.nranks, p,
            "shard written for {} ranks, run configured for {p}",
            header.nranks
        );
        assert!(
            header.kind == SnapshotKind::Shard || p == 1,
            "full snapshots shard only a 1-rank world"
        );
        assert_eq!(header.rank, rank, "rank {rank} opened the wrong shard");
        let n = header.global_vertices;

        comm.phase("Prepare", |c| {
            // 1. Delegate election from the global degree array.
            let my_degrees: Vec<u32> = (0..header.rows)
                .map(|i| store.degree(header.vertex_of_row(i)) as u32)
                .collect();
            let gathered = c.allgatherv(my_degrees);
            let mut degrees = vec![0u32; n];
            let mut base = 0usize;
            for r in 0..p {
                let rows = owned_row_count(n, p, r);
                for i in 0..rows {
                    degrees[r + i * p] = gathered[base + i];
                }
                base += rows;
            }
            let (delegates, is_delegate) = delegates_from_degrees(&degrees, p, cfg.threshold);

            // 2. This rank's delegate-partition arc list.
            let (mut arcs, mut movable) = shard_rank_arcs(store, rank, p, &is_delegate);

            // 3. Load rebalancing, replayed from the shared plan.
            if cfg.rebalance {
                let summaries = c.allgatherv(vec![(arcs.len() as u64, movable.len() as u64)]);
                let loads: Vec<usize> = summaries.iter().map(|&(l, _)| l as usize).collect();
                let counts: Vec<usize> = summaries.iter().map(|&(_, m)| m as usize).collect();
                let plan = plan_rebalance(&loads, &counts, p);
                let pool_base = plan.pool_base(rank);
                let mut ship: Vec<Vec<(u32, u32, f64)>> = vec![Vec::new(); p];
                for k in 0..plan.surplus[rank] {
                    let idx = movable.pop().expect("surplus is capped by movable count");
                    let a = arcs.remove(idx);
                    ship[plan.dest[pool_base + k]].push((a.src, a.dst, a.weight));
                }
                let received = c.alltoallv(ship);
                for bucket in received {
                    for (src, dst, weight) in bucket {
                        arcs.push(Arc { src, dst, weight });
                    }
                }
            }

            // 4. Ghost discovery: tell each owner which of its low-degree
            //    vertices this rank's arcs observe.
            let owned: Vec<u32> = (rank..n)
                .step_by(p)
                .filter(|&v| !is_delegate[v])
                .map(|v| v as u32)
                .collect();
            let mut observed: Vec<HashSet<u32>> = vec![HashSet::new(); p];
            for a in &arcs {
                for v in [a.src, a.dst] {
                    if !is_delegate[v as usize] && (v as usize) % p != rank {
                        observed[(v as usize) % p].insert(v);
                    }
                }
            }
            let mut providers: Vec<usize> = (0..p).filter(|&r| !observed[r].is_empty()).collect();
            providers.sort_unstable();
            let notify: Vec<Vec<u32>> = observed
                .into_iter()
                .map(|s| {
                    let mut v: Vec<u32> = s.into_iter().collect();
                    v.sort_unstable();
                    v
                })
                .collect();
            let notified = c.alltoallv(notify);
            let mut subs_of: HashMap<u32, Vec<usize>> = HashMap::new();
            for (r, bucket) in notified.into_iter().enumerate() {
                for v in bucket {
                    subs_of.entry(v).or_default().push(r);
                }
            }
            let mut subscribers: Vec<(u32, Vec<usize>)> = subs_of.into_iter().collect();
            subscribers.sort_by_key(|(v, _)| *v);

            // 5. Flows and the MDL node term, folded in global vertex order.
            let my_strengths: Vec<f64> = (0..header.rows)
                .map(|i| store.strength(header.vertex_of_row(i)))
                .collect();
            let gathered = c.allgatherv(my_strengths);
            let mut strengths = vec![0.0f64; n];
            let mut base = 0usize;
            for r in 0..p {
                let rows = owned_row_count(n, p, r);
                for i in 0..rows {
                    strengths[r + i * p] = gathered[base + i];
                }
                base += rows;
            }
            let inv_two_w = 1.0 / (2.0 * header.global_weight);
            let node_term: f64 = strengths.iter().map(|&s| plogp(s * inv_two_w)).sum();

            let delegate_set: HashSet<u32> = delegates.iter().copied().collect();
            let st = assemble(
                rank,
                p,
                &arcs,
                &delegate_set,
                &owned,
                &|v| strengths[v as usize] * inv_two_w,
                inv_two_w,
                subscribers,
                providers,
            );
            RankProgram {
                cfg,
                delegates,
                states: vec![st],
                states_from: rank,
                node_term,
                one_level: -node_term,
                original_n: n,
            }
        })
    }

    /// Model selection + packaging shared by the completed and launcher
    /// paths: fall back to the one-module partition when the clustered
    /// code is longer, as in the sequential algorithm.
    pub fn assemble_output(
        &self,
        mut modules: Vec<u32>,
        trace: Vec<StageTrace>,
        mut codelength: f64,
        rank_stats: Vec<RankStats>,
        recovery: RecoveryReport,
    ) -> DistributedOutput {
        if codelength > self.one_level {
            modules = vec![0; self.original_n];
            codelength = self.one_level;
        }
        DistributedOutput {
            modules,
            codelength,
            one_level_codelength: self.one_level,
            trace,
            rank_stats,
            nranks: self.cfg.nranks,
            recovery,
        }
    }

    /// One rank's complete SPMD program: restore-or-initialize, stage 1
    /// with delegates, merge, stage-2 levels, final gather. Identical over
    /// the thread backend and a socket transport — the communicator hides
    /// the substrate, the snapshot store hides where checkpoints live.
    ///
    /// Returns `Some((modules, trace, codelength))` on rank 0, `None`
    /// elsewhere.
    pub fn run_rank(
        &self,
        comm: &mut Comm,
        store: &dyn SnapshotStore,
    ) -> Option<(Vec<u32>, Vec<StageTrace>, f64)> {
        let cfg = self.cfg;
        let p = cfg.nranks;
        let states = &self.states;
        let delegates = &self.delegates;
        let node_term = self.node_term;
        let original_n = self.original_n;
        let checkpoint_every = cfg.recovery.checkpoint_every;
        {
            let rank = comm.rank();
            let mut st: LocalState;
            let mut trace: Vec<StageTrace>;
            let mut assign: Vec<(u32, u32)>;
            let mut delegate_assign: BTreeMap<u32, u64>;
            let mut prev_mdl: f64;
            let mut level_vertices: usize;
            let mut resume: Option<(SnapshotPos, StageCursor)> = None;

            match store.restore_agreed(rank) {
                Some(snap) => {
                    // Every rank must resume the same boundary; the commit
                    // protocol guarantees it, the collective verifies it
                    // (and doubles as the attempt's entry barrier). The
                    // restore read is metered as checkpoint traffic.
                    comm.phase("Recovery", |c| {
                        let word = snap.pos.as_word();
                        let lo = c.allreduce_u64(word, ReduceOp::Min);
                        let hi = c.allreduce_u64(word, ReduceOp::Max);
                        assert_eq!(lo, hi, "ranks restored different checkpoints");
                        c.add_checkpoint_bytes(snap.approx_wire_bytes());
                    });
                    st = snap.st;
                    trace = snap.trace;
                    assign = snap.assign;
                    delegate_assign = snap.delegate_assign;
                    prev_mdl = snap.prev_mdl;
                    level_vertices = snap.level_vertices;
                    resume = Some((snap.pos, snap.cursor));
                }
                None => {
                    st = states[rank - self.states_from].clone();
                    trace = Vec::new();
                    assign = Vec::new();
                    delegate_assign = delegates.iter().map(|&d| (d, d as u64)).collect();
                    prev_mdl = 0.0;
                    level_vertices = 0;
                }
            }

            let resumed_stage2 = resume.as_ref().is_some_and(|(pos, _)| pos.stage == 2);
            let mut start_level = 1usize;

            if !resumed_stage2 {
                // ---- Stage 1: clustering with delegates (fresh, or
                //      resumed mid-stage from a checkpoint) ----
                let s1_resume = resume.take().map(|(_, cursor)| cursor);
                let s1 = {
                    let assign_ref = &assign;
                    let trace_ref = &trace;
                    cluster_stage_recoverable(
                        comm,
                        &mut st,
                        &cfg,
                        node_term,
                        &mut delegate_assign,
                        "s1/",
                        s1_resume,
                        checkpoint_every,
                        &mut |c, stc, da, cursor| {
                            let snap = RankSnapshot {
                                pos: SnapshotPos {
                                    stage: 1,
                                    level: 0,
                                    round: cursor.next_round as u32,
                                },
                                st: stc.clone(),
                                cursor: cursor.clone(),
                                delegate_assign: da.clone(),
                                assign: assign_ref.clone(),
                                trace: trace_ref.clone(),
                                prev_mdl,
                                level_vertices,
                            };
                            c.add_checkpoint_bytes(snap.approx_wire_bytes());
                            store.commit(rank, &snap);
                        },
                    )
                };

                // ---- First merge: original vertices → level-1 vertices ----
                let merge = comm.phase("Merge", |c| distributed_merge(c, &st, &cfg));

                // Original-vertex assignments this rank is responsible for.
                assign.clear();
                for (li, &v) in st.verts.iter().enumerate() {
                    if st.kind[li] == VertexKind::Owned {
                        assign.push((v, merge.dense[&st.module_id_of(li)]));
                    }
                }
                for &d in delegates {
                    if (d as usize) % p == rank {
                        assign.push((d, merge.dense[&delegate_assign[&d]]));
                    }
                }

                push_trace(&mut trace, 1, 0, &s1, original_n, merge.dense.len());
                st = merge.state;
                prev_mdl = s1.mdl;
                level_vertices = merge.dense.len();
            } else {
                start_level = resume.as_ref().map(|(pos, _)| pos.level as usize).unwrap();
            }

            // ---- Stage 2 loop: clustering without delegates ----
            let mut no_delegates: BTreeMap<u32, u64> = if resumed_stage2 {
                std::mem::take(&mut delegate_assign)
            } else {
                BTreeMap::new()
            };
            for level in start_level..=cfg.max_outer_iterations {
                if level_vertices <= 1 {
                    break;
                }
                let s2_resume = if resume
                    .as_ref()
                    .is_some_and(|(pos, _)| pos.stage == 2 && pos.level as usize == level)
                {
                    resume.take().map(|(_, cursor)| cursor)
                } else {
                    None
                };
                let s2 = {
                    let assign_ref = &assign;
                    let trace_ref = &trace;
                    cluster_stage_recoverable(
                        comm,
                        &mut st,
                        &cfg,
                        node_term,
                        &mut no_delegates,
                        "s2/",
                        s2_resume,
                        checkpoint_every,
                        &mut |c, stc, da, cursor| {
                            let snap = RankSnapshot {
                                pos: SnapshotPos {
                                    stage: 2,
                                    level: level as u32,
                                    round: cursor.next_round as u32,
                                },
                                st: stc.clone(),
                                cursor: cursor.clone(),
                                delegate_assign: da.clone(),
                                assign: assign_ref.clone(),
                                trace: trace_ref.clone(),
                                prev_mdl,
                                level_vertices,
                            };
                            c.add_checkpoint_bytes(snap.approx_wire_bytes());
                            store.commit(rank, &snap);
                        },
                    )
                };
                let merge = comm.phase("Merge", |c| distributed_merge(c, &st, &cfg));
                let new_vertices = merge.dense.len();
                push_trace(&mut trace, 2, level, &s2, level_vertices, new_vertices);

                // Re-point original assignments through this level.
                refresh_assignments(comm, &st, &merge.dense, &mut assign, cfg.comm_path);

                let improved = prev_mdl - s2.mdl;
                prev_mdl = s2.mdl;
                st = merge.state;
                let stalled = new_vertices == level_vertices;
                level_vertices = new_vertices;
                if s2.total_moves == 0 || stalled || improved < cfg.theta {
                    break;
                }
            }

            // ---- Gather final assignments everywhere ----
            let gathered = comm.allgatherv(assign);
            if rank == 0 {
                let mut modules = vec![0u32; original_n];
                for &(v, m) in gathered.iter() {
                    modules[v as usize] = m;
                }
                Some((modules, trace, prev_mdl))
            } else {
                None
            }
        }
    }
}

/// Assemble the best checkpointed clustering after retries were exhausted.
///
/// Stage-2 snapshots carry original-vertex assignments directly; stage-1
/// snapshots are dense-relabeled from the raw module ids. With no
/// checkpoint at all, the result degrades to the one-module partition.
/// Shared by the in-process retry loop and the process launcher.
pub fn degraded_output(
    store: &dyn SnapshotStore,
    p: usize,
    one_level: f64,
    original_n: usize,
    rank_stats: Vec<RankStats>,
    recovery: RecoveryReport,
) -> DistributedOutput {
    let (mut modules, mut codelength, trace) = match store.agreed_pos() {
        None => (vec![0u32; original_n], one_level, Vec::new()),
        Some(pos) => {
            let snaps: Vec<RankSnapshot> = (0..p)
                .map(|r| store.restore_agreed(r).expect("store is consistent"))
                .collect();
            let codelength = snaps[0].cursor.mdl;
            let trace = snaps[0].trace.clone();
            let mut modules = vec![0u32; original_n];
            if pos.stage == 2 {
                for snap in &snaps {
                    for &(v, m) in &snap.assign {
                        modules[v as usize] = m;
                    }
                }
            } else {
                let mut pairs: Vec<(u32, u64)> = Vec::new();
                for snap in &snaps {
                    let st = &snap.st;
                    for (li, &v) in st.verts.iter().enumerate() {
                        if st.kind[li] == VertexKind::Owned {
                            pairs.push((v, st.module_id_of(li)));
                        }
                    }
                    for (&d, &m) in &snap.delegate_assign {
                        if (d as usize) % p == st.rank {
                            pairs.push((d, m));
                        }
                    }
                }
                let mut ids: Vec<u64> = pairs.iter().map(|&(_, m)| m).collect();
                ids.sort_unstable();
                ids.dedup();
                let dense: HashMap<u64, u32> = ids
                    .iter()
                    .enumerate()
                    .map(|(i, &m)| (m, i as u32))
                    .collect();
                for (v, m) in pairs {
                    modules[v as usize] = dense[&m];
                }
            }
            (modules, codelength, trace)
        }
    };
    if codelength > one_level {
        modules = vec![0; original_n];
        codelength = one_level;
    }
    DistributedOutput {
        modules,
        codelength,
        one_level_codelength: one_level,
        trace,
        rank_stats,
        nranks: p,
        recovery,
    }
}

fn push_trace(
    trace: &mut Vec<StageTrace>,
    stage: u8,
    level: usize,
    s: &StageOutcome,
    before: usize,
    after: usize,
) {
    trace.push(StageTrace {
        stage,
        level,
        codelength: s.mdl,
        num_modules: s.num_modules as usize,
        vertices_before: before,
        vertices_after: after,
        inner_iterations: s.inner_iterations,
        moves: s.total_moves,
        mdl_series: s.mdl_series.clone(),
    });
}

/// Distributed merging (paper §3.5): contract every module to a vertex of
/// a new graph, 1D-partitioned by the dense module ids.
fn distributed_merge(comm: &mut Comm, st: &LocalState, _cfg: &DistributedConfig) -> MergeOutcome {
    let p = st.nranks;

    // 1. Global dense relabeling of surviving modules.
    let mut owned_ids: Vec<u64> = st
        .owned_modules
        .iter()
        .filter(|(_, e)| e.members > 0 || e.flow > 1e-15)
        .map(|(&m, _)| m)
        .collect();
    owned_ids.sort_unstable();
    let all_ids = comm.allgatherv(owned_ids);
    let mut sorted: Vec<u64> = (*all_ids).clone();
    sorted.sort_unstable();
    sorted.dedup();
    let dense: HashMap<u64, u32> = sorted
        .iter()
        .enumerate()
        .map(|(i, &m)| (m, i as u32))
        .collect();

    // 2. Aggregate local arcs by (new src, new dst) and route to the new
    //    source owner.
    let mut agg: HashMap<(u32, u32), f64> = HashMap::new();
    for li in 0..st.verts.len() as u32 {
        if st.kind[li as usize] == VertexKind::Ghost {
            continue;
        }
        let a = dense_of(&dense, st.module_id_of(li as usize));
        for (tgt, w) in st.arcs_of(li) {
            let b = dense_of(&dense, st.module_id_of(tgt as usize));
            *agg.entry((a, b)).or_insert(0.0) += w;
            comm.add_work(1);
        }
    }
    let mut arc_out: Vec<Vec<MergedArc>> = vec![Vec::new(); p];
    for (&(a, b), &w) in &agg {
        arc_out[(a as usize) % p].push(MergedArc {
            src: a,
            dst: b,
            weight: w,
        });
    }
    // Deterministic accumulation order at the receiver.
    for bucket in &mut arc_out {
        bucket.sort_by_key(|a| (a.src, a.dst));
    }
    let arc_in = comm.alltoallv(arc_out);

    // 3. Route carried flows to the new owners.
    let mut flow_out: Vec<Vec<MergedFlow>> = vec![Vec::new(); p];
    for (&m, e) in &st.owned_modules {
        if let Some(&a) = dense.get(&m) {
            flow_out[(a as usize) % p].push(MergedFlow {
                vertex: a,
                flow: e.flow,
            });
        }
    }
    for bucket in &mut flow_out {
        bucket.sort_by_key(|f| f.vertex);
    }
    let flow_in = comm.alltoallv(flow_out);

    // 4. Assemble the rank's 1D level state.
    let mut merged: HashMap<(u32, u32), f64> = HashMap::new();
    for msgs in arc_in {
        for a in msgs {
            *merged.entry((a.src, a.dst)).or_insert(0.0) += a.weight;
        }
    }
    let mut arcs: Vec<Arc> = merged
        .into_iter()
        .map(|((a, b), w)| Arc {
            src: a,
            dst: b,
            weight: w,
        })
        .collect();
    arcs.sort_by_key(|a| (a.src, a.dst));
    let mut flows: HashMap<u32, f64> = HashMap::new();
    for msgs in flow_in {
        for f in msgs {
            *flows.entry(f.vertex).or_insert(0.0) += f.flow;
        }
    }

    let state = build_1d_state(st.rank, p, arcs, &flows, st.inv_two_w);
    MergeOutcome { state, dense }
}

fn dense_of(dense: &HashMap<u64, u32>, module: u64) -> u32 {
    *dense
        .get(&module)
        .unwrap_or_else(|| panic!("module {module} missing from dense relabeling"))
}

/// Re-point original-vertex assignments through one merge level: each
/// current value is a level vertex owned by `value % p`.
///
/// Legacy path: a query/reply alltoallv pair — ask the owner for the new
/// dense module id, then rewrite in place. Compact path: the two
/// collectives fuse into one *migration* alltoallv — the `(vertex,
/// current)` pairs travel to the owner, which rewrites and **keeps** them.
/// Assignments thereby change rank between levels, which is safe because
/// every consumer (the final allgatherv assembly, checkpoint snapshots,
/// degraded-output union) is agnostic to where a pair lives.
fn refresh_assignments(
    comm: &mut Comm,
    st: &LocalState,
    dense: &HashMap<u64, u32>,
    assign: &mut Vec<(u32, u32)>,
    path: CommPath,
) {
    let p = st.nranks;
    match path {
        CommPath::Legacy => {
            let mut queries: Vec<Vec<u32>> = vec![Vec::new(); p];
            for &(_, current) in assign.iter() {
                queries[(current as usize) % p].push(current);
            }
            let incoming = comm.alltoallv(queries);
            let mut replies: Vec<Vec<AssignmentReply>> = vec![Vec::new(); p];
            for (src, keys) in incoming.into_iter().enumerate() {
                for key in keys {
                    let li = st.local_of(key);
                    let module = st.module_id_of(li as usize);
                    replies[src].push(AssignmentReply {
                        key,
                        module: dense_of(dense, module),
                    });
                    comm.add_work(1);
                }
            }
            let answers = comm.alltoallv(replies);
            let mut lookup: HashMap<u32, u32> = HashMap::new();
            for msgs in answers {
                for r in msgs {
                    lookup.insert(r.key, r.module);
                }
            }
            for slot in assign.iter_mut() {
                slot.1 = lookup[&slot.1];
            }
        }
        CommPath::Compact => {
            let mut buckets: Vec<Vec<(u32, u32)>> = vec![Vec::new(); p];
            for &(v, current) in assign.iter() {
                buckets[(current as usize) % p].push((v, current));
            }
            // Sorted buckets delta-compress well; order is otherwise free.
            for bucket in &mut buckets {
                bucket.sort_unstable();
            }
            let mut enc = 0u64;
            let outgoing: Vec<Vec<u8>> = buckets
                .iter()
                .map(|b| {
                    let mut buf = Vec::new();
                    if !b.is_empty() {
                        codec::encode_pairs(&mut buf, b);
                        enc += buf.len() as u64;
                    }
                    buf
                })
                .collect();
            comm.add_codec_bytes(enc);
            let incoming = comm.alltoallv(outgoing);
            assign.clear();
            let mut dec = 0u64;
            for buf in incoming {
                if buf.is_empty() {
                    continue;
                }
                dec += buf.len() as u64;
                let mut pos = 0;
                for (v, current) in codec::decode_pairs(&buf, &mut pos) {
                    let li = st.local_of(current);
                    let module = st.module_id_of(li as usize);
                    assign.push((v, dense_of(dense, module)));
                    comm.add_work(1);
                }
            }
            comm.add_codec_bytes(dec);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rounds::cluster_stage;
    use std::sync::Mutex as StdMutex;

    /// Debug reproduction: after stage 1 and the first merge, check that
    /// (a) every rank's ghost assignment matches the owner's assignment and
    /// (b) the merged arc sets are globally symmetric.
    #[test]
    fn stage1_merge_produces_symmetric_level() {
        let (g, _) = generators::lfr_like(
            generators::LfrParams {
                n: 400,
                ..Default::default()
            },
            11,
        );
        let cfg = DistributedConfig {
            nranks: 3,
            ..Default::default()
        };
        let p = cfg.nranks;
        let partition = Partition::delegate(&g, p, cfg.threshold, cfg.rebalance);
        let states = build_stage1_states(&g, &partition);
        let inv_two_w = 1.0 / (2.0 * g.total_weight());
        let node_term: f64 = (0..g.num_vertices() as VertexId)
            .map(|v| plogp(g.strength(v) * inv_two_w))
            .sum();
        let delegates = partition.delegates.clone();

        // (rank, owned `(vertex, module)` pairs, ghost `(vertex, owner, module)` views)
        type RankView = (usize, Vec<(u32, u64)>, Vec<(u32, u32, u64)>);
        let collected: StdMutex<Vec<RankView>> = StdMutex::new(Vec::new());
        infomap_mpisim::World::new(p).run(|comm| {
            let mut st = states[comm.rank()].clone();
            let mut delegate_assign: BTreeMap<u32, u64> =
                delegates.iter().map(|&d| (d, d as u64)).collect();
            let _s1 = cluster_stage(comm, &mut st, &cfg, node_term, &mut delegate_assign, "s1/");
            // Record each rank's view: owned assignments and ghost views.
            let mut owned: Vec<(u32, u64)> = Vec::new();
            let mut ghosts: Vec<(u32, u32, u64)> = Vec::new();
            for (li, &v) in st.verts.iter().enumerate() {
                match st.kind[li] {
                    VertexKind::Owned => owned.push((v, st.module_id_of(li))),
                    VertexKind::Ghost => {
                        ghosts.push((st.rank as u32, v, st.module_id_of(li)))
                    }
                    VertexKind::DelegateCopy => owned.push((v, st.module_id_of(li))),
                }
            }
            collected.lock().unwrap().push((st.rank, owned, ghosts));

            // Original-arc symmetry at stage 1: every stored arc (u,v)
            // must have its mirror (v,u) stored on some rank.
            let my0: Vec<(u32, u32)> = (0..st.verts.len() as u32)
                .filter(|&li| st.kind[li as usize] != VertexKind::Ghost)
                .flat_map(|li| {
                    let src = st.verts[li as usize];
                    st.arcs_of(li)
                        .map(|(t, _)| (src, st.verts[t as usize]))
                        .collect::<Vec<_>>()
                })
                .collect();
            let all0 = comm.allgatherv(my0);
            let mut counts: std::collections::HashMap<(u32, u32), i32> =
                std::collections::HashMap::new();
            for &(a, b) in all0.iter() {
                *counts.entry((a, b)).or_insert(0) += 1;
            }
            for (&(a, b), &c) in counts.iter() {
                if a != b {
                    let rc = counts.get(&(b, a)).copied().unwrap_or(0);
                    assert_eq!(
                        c, rc,
                        "original arc ({a},{b}) count {c} vs mirror count {rc}"
                    );
                }
            }

            // Go one level deeper: merge, then inspect the level-1 state.
            let merge = distributed_merge(comm, &st, &cfg);
            let st1 = merge.state;
            // Global symmetry check of level-1 arcs.
            let my_arcs: Vec<(u32, u32)> = (0..st1.verts.len() as u32)
                .filter(|&li| st1.kind[li as usize] != VertexKind::Ghost)
                .flat_map(|li| {
                    let src = st1.verts[li as usize];
                    st1.arcs_of(li)
                        .map(|(t, _)| (src, st1.verts[t as usize]))
                        .collect::<Vec<_>>()
                })
                .collect();
            let all_arcs = comm.allgatherv(my_arcs);
            let set: std::collections::HashSet<(u32, u32)> =
                all_arcs.iter().copied().collect();
            for &(a, b) in set.iter() {
                assert!(
                    set.contains(&(b, a)),
                    "level-1 arc ({a},{b}) has no mirror ({b},{a})"
                );
            }
            // Subscriber completeness: for every ghost on this rank, the
            // owner must list this rank.
            let ghost_list: Vec<(u32, u32)> = (0..st1.verts.len() as u32)
                .filter(|&li| st1.kind[li as usize] == VertexKind::Ghost)
                .map(|li| (st1.rank as u32, st1.verts[li as usize]))
                .collect();
            let all_ghosts = comm.allgatherv(ghost_list);
            for &(r, v) in all_ghosts.iter() {
                if st1.rank == (v as usize) % cfg.nranks {
                    let listed = st1
                        .subscribers
                        .iter()
                        .any(|(sv, subs)| *sv == v && subs.contains(&(r as usize)));
                    assert!(
                        listed,
                        "owner rank {} does not list subscriber {r} for vertex {v}; subscribers: {:?}",
                        st1.rank,
                        st1.subscribers.iter().find(|(sv, _)| *sv == v)
                    );
                }
            }
        });

        let data = collected.lock().unwrap();
        let mut truth: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
        for (_, owned, _) in data.iter() {
            for &(v, m) in owned {
                let prev = truth.insert(v, m);
                if let Some(prev) = prev {
                    assert_eq!(prev, m, "vertex {v} has conflicting owner/delegate views");
                }
            }
        }
        for (_, _, ghosts) in data.iter() {
            for &(rank, v, m) in ghosts {
                assert_eq!(
                    truth.get(&v),
                    Some(&m),
                    "rank {rank}: ghost {v} stale (sees {m}, truth {:?})",
                    truth.get(&v)
                );
            }
        }
    }
    use infomap_core::sequential::{Infomap, InfomapConfig};
    use infomap_graph::generators;

    #[test]
    fn recovers_ring_of_cliques_on_four_ranks() {
        let (g, truth) = generators::ring_of_cliques(4, 6, 0);
        let out = DistributedInfomap::new(DistributedConfig {
            nranks: 4,
            ..Default::default()
        })
        .run(&g);
        assert_eq!(out.num_modules(), 4, "trace: {:?}", out.trace);
        for c in 0..4u32 {
            let members: Vec<u32> = (0..24)
                .filter(|&v| truth[v] == c)
                .map(|v| out.modules[v])
                .collect();
            assert!(
                members.windows(2).all(|w| w[0] == w[1]),
                "clique {c}: {members:?}"
            );
        }
    }

    #[test]
    fn single_rank_matches_structure_of_sequential() {
        let (g, _) = generators::planted_partition(6, 12, 0.5, 0.02, 7);
        let dist = DistributedInfomap::new(DistributedConfig {
            nranks: 1,
            ..Default::default()
        })
        .run(&g);
        let seq = Infomap::new(InfomapConfig::default()).run(&g);
        // Same ballpark: module counts within a factor of two, MDL close.
        let (a, b) = (dist.num_modules() as f64, seq.num_modules() as f64);
        assert!(a <= 2.0 * b && b <= 2.0 * a, "dist {a} vs seq {b}");
        assert!(
            (dist.codelength - seq.codelength).abs() / seq.codelength < 0.12,
            "dist MDL {} vs seq {}",
            dist.codelength,
            seq.codelength
        );
    }

    #[test]
    fn distributed_mdl_close_to_sequential_on_lfr() {
        let (g, _) = generators::lfr_like(
            generators::LfrParams {
                n: 600,
                mu: 0.25,
                ..Default::default()
            },
            3,
        );
        let seq = Infomap::new(InfomapConfig::default()).run(&g);
        let dist = DistributedInfomap::new(DistributedConfig {
            nranks: 4,
            ..Default::default()
        })
        .run(&g);
        assert!(dist.codelength < dist.one_level_codelength);
        let rel = (dist.codelength - seq.codelength).abs() / seq.codelength;
        assert!(
            rel < 0.10,
            "distributed MDL {} deviates {rel:.3} from sequential {}",
            dist.codelength,
            seq.codelength
        );
    }

    #[test]
    fn mdl_series_converges_with_bounded_transients() {
        let (g, _) = generators::lfr_like(
            generators::LfrParams {
                n: 400,
                ..Default::default()
            },
            11,
        );
        let out = DistributedInfomap::new(DistributedConfig {
            nranks: 3,
            ..Default::default()
        })
        .run(&g);
        let series = out.mdl_series();
        assert!(series.len() >= 2);
        // Moves on one-round-stale remote information may transiently raise
        // the MDL by a whisker (the vertex-bouncing hazard of §3.4); the
        // min-label rule and the sync rounds must keep transients tiny and
        // the overall trend convergent.
        let first = series[0];
        let last = *series.last().unwrap();
        assert!(last < first, "no net improvement: {series:?}");
        for w in series.windows(2) {
            let rise = w[1] - w[0];
            assert!(
                rise <= 0.01 * w[0].abs(),
                "MDL jumped by {rise} (>{}%): {series:?}",
                1.0
            );
        }
        // The final value sits at (or within a hair of) the series minimum.
        let min = series.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(
            last <= min + 0.01 * min.abs(),
            "did not settle at the minimum: {series:?}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let (g, _) = generators::lfr_like(generators::LfrParams::default(), 2);
        let cfg = DistributedConfig {
            nranks: 3,
            seed: 5,
            ..Default::default()
        };
        let a = DistributedInfomap::new(cfg).run(&g);
        let b = DistributedInfomap::new(cfg).run(&g);
        assert_eq!(a.modules, b.modules);
        assert_eq!(a.codelength, b.codelength);
    }

    #[test]
    fn phases_are_metered() {
        let (g, _) = generators::ring_of_cliques(6, 5, 0);
        let out = DistributedInfomap::new(DistributedConfig {
            nranks: 4,
            ..Default::default()
        })
        .run(&g);
        for s in &out.rank_stats {
            assert!(
                s.phases.contains_key("s1/FindBestModule"),
                "phases: {:?}",
                s.phases.keys()
            );
            assert!(s.phases.contains_key("s1/Other"));
        }
        let total_work: u64 = out.rank_stats.iter().map(|s| s.total.work_units).sum();
        assert!(total_work > 0);
    }
}
