//! The synchronized clustering rounds shared by both stages of the
//! paper's Algorithm 2.
//!
//! Each inner round runs four metered phases, named as in Figure 8:
//!
//! 1. **FindBestModule** — every rank sweeps its movable vertices in random
//!    order; owned low-degree vertices move immediately, delegate copies
//!    only produce proposals.
//! 2. **BroadcastDelegates** — delegate proposals are allgathered; the
//!    proposal with the globally minimal δL wins per delegate
//!    (minimum-label tie-break) and is applied identically on all ranks.
//! 3. **SwapBoundaryInfo** — boundary community IDs plus full
//!    `Module_Info` records (Algorithm 3, with `is_sent` duplicate
//!    suppression) travel point-to-point to the static neighbor ranks.
//! 4. **Other** — module statistics are re-established exactly by an
//!    owner-rank reduction (modID → rank `modID mod p`), the global MDL is
//!    computed from the owners' partial sums, and the round's move count is
//!    allreduced to decide termination.
//!
//! The owner reduction is the crate's realization of the paper's "swap the
//! whole community information of each boundary vertex": every rank that
//! touches a module contributes its exact local share (vertex flows for
//! members, arc flows for exits — each arc lives on exactly one rank) and
//! receives the exact total back. It composes with the gossip of phase 3,
//! which lets neighbors learn *new* module ids mid-round.

use std::collections::HashMap;

use infomap_core::plogp;
use infomap_mpisim::{Comm, ReduceOp};
use rand::prelude::*;
use rand::rngs::StdRng;

use crate::config::DistributedConfig;
use crate::messages::{DelegateProposal, ModuleContribution, ModuleInfoMsg, VertexUpdate};
use crate::state::{LocalState, ModuleEntry, VertexKind};

/// Result of one clustering stage (a run of inner rounds to convergence).
#[derive(Clone, Debug)]
pub struct StageOutcome {
    /// Synchronized inner rounds executed.
    pub inner_iterations: usize,
    /// Total vertex moves (owned moves summed over ranks + elected
    /// delegate moves).
    pub total_moves: u64,
    /// Exact global MDL after the stage.
    pub mdl: f64,
    /// Exact global MDL after every sync (index 0 = singleton/initial).
    pub mdl_series: Vec<f64>,
    /// Number of non-empty modules after the stage.
    pub num_modules: u64,
}

/// Tag bases for point-to-point boundary traffic.
const TAG_VERTEX_UPDATES: u64 = 0x10;
const TAG_MODULE_INFO: u64 = 0x11;

/// δL of moving a vertex (share) with flow `p_u` and local out-flow
/// `out_u` from `from` to `to`, given the current total exit flow.
/// Mirrors `infomap_core::Partitioning::delta` over hash-table entries.
#[inline]
fn delta_codelength(
    sum_exit: f64,
    from: &ModuleEntry,
    to: &ModuleEntry,
    p_u: f64,
    out_u: f64,
    flow_to_current: f64,
    flow_to_target: f64,
) -> f64 {
    let q_i = from.exit;
    let p_i = from.flow;
    let q_j = to.exit;
    let p_j = to.flow;
    let q_i_new = (q_i - out_u + 2.0 * flow_to_current).max(0.0);
    let q_j_new = (q_j + out_u - 2.0 * flow_to_target).max(0.0);
    let p_i_new = (p_i - p_u).max(0.0);
    let p_j_new = p_j + p_u;
    let q_new = (sum_exit + (q_i_new - q_i) + (q_j_new - q_j)).max(0.0);
    plogp(q_new) - plogp(sum_exit)
        - 2.0 * (plogp(q_i_new) - plogp(q_i) + plogp(q_j_new) - plogp(q_j))
        + plogp(q_i_new + p_i_new)
        - plogp(q_i + p_i)
        + plogp(q_j_new + p_j_new)
        - plogp(q_j + p_j)
}

/// A locally evaluated candidate move.
#[derive(Clone, Copy, Debug)]
struct LocalCandidate {
    to_module: u64,
    delta: f64,
    flow_to_current: f64,
    flow_to_target: f64,
}

/// Scan the local arcs of `li` and return the best admissible move.
///
/// `min_label` implements the paper's anti-bouncing rule: a move whose
/// target module was discovered through a *ghost* arc (a boundary
/// community) is only admissible toward a smaller module id.
fn best_local_move(
    st: &LocalState,
    li: u32,
    min_gain: f64,
    min_label: bool,
    scratch: &mut Vec<(u64, f64, bool)>,
) -> Option<LocalCandidate> {
    scratch.clear();
    let current = st.module_of[li as usize];
    let mut flow_to_current = 0.0;
    for (tgt, w) in st.arcs_of(li) {
        if tgt == li {
            continue;
        }
        let f = w * st.inv_two_w;
        let m = st.module_of[tgt as usize];
        let ghost = st.kind[tgt as usize] == VertexKind::Ghost;
        if m == current {
            flow_to_current += f;
        } else {
            match scratch.iter_mut().find(|(mm, _, _)| *mm == m) {
                Some((_, acc, b)) => {
                    *acc += f;
                    *b |= ghost;
                }
                None => scratch.push((m, f, ghost)),
            }
        }
    }
    if scratch.is_empty() {
        return None;
    }
    let from = st.modules.get(&current).copied().unwrap_or_default();
    let p_u = st.node_flow[li as usize];
    let out_u = st.out_flow[li as usize];
    let mut best: Option<LocalCandidate> = None;
    for &(m, flow_to_target, via_ghost) in scratch.iter() {
        if min_label && via_ghost && m >= current {
            continue; // boundary community: minimum-label rule
        }
        let to = st.modules.get(&m).copied().unwrap_or_default();
        let delta =
            delta_codelength(st.sum_exit, &from, &to, p_u, out_u, flow_to_current, flow_to_target);
        if delta >= -min_gain {
            continue;
        }
        let better = match &best {
            None => true,
            Some(b) => {
                delta < b.delta - 1e-12
                    || ((delta - b.delta).abs() <= 1e-12 && m < b.to_module)
            }
        };
        if better {
            best = Some(LocalCandidate { to_module: m, delta, flow_to_current, flow_to_target });
        }
    }
    best
}

/// Apply a move to the rank's local view (module table + assignment +
/// exit-sum estimate). For delegate copies this applies the local share;
/// the next owner reduction restores exact statistics.
fn apply_local_move(st: &mut LocalState, li: u32, c: &LocalCandidate) {
    let from_id = st.module_of[li as usize];
    let to_id = c.to_module;
    let p_u = st.node_flow[li as usize];
    let out_u = st.out_flow[li as usize];

    let from = st.modules.entry(from_id).or_default();
    let q_i_old = from.exit;
    from.exit = (from.exit - out_u + 2.0 * c.flow_to_current).max(0.0);
    from.flow = (from.flow - p_u).max(0.0);
    from.members = from.members.saturating_sub(1);
    let dq_i = from.exit - q_i_old;

    let to = st.modules.entry(to_id).or_default();
    let q_j_old = to.exit;
    to.exit = (to.exit + out_u - 2.0 * c.flow_to_target).max(0.0);
    to.flow += p_u;
    to.members += 1;
    let dq_j = to.exit - q_j_old;

    st.sum_exit = (st.sum_exit + dq_i + dq_j).max(0.0);
    st.module_of[li as usize] = to_id;
}

/// Phase 1: the greedy sweep. Returns (owned moves, delegate proposals).
fn find_best_modules(
    st: &mut LocalState,
    cfg: &DistributedConfig,
    rng: &mut StdRng,
    order: &mut Vec<u32>,
    round: usize,
) -> (u64, u64, Vec<DelegateProposal>) {
    // Anti-bouncing (§3.4): on even rounds, boundary moves (targets
    // discovered through ghost arcs) are restricted toward smaller labels,
    // so of any symmetric swap pair (u -> M(v) while v -> M(u)) at most one
    // direction is admissible and the bouncing cycle is broken every other
    // round. Odd rounds are unrestricted so a vertex separated from its
    // community by a larger label can still rejoin it. Combined with the
    // hashed eligibility subset below, persistent oscillation cannot
    // survive two consecutive rounds.
    let restrict_boundary = cfg.min_label_tiebreak && round.is_multiple_of(2);
    let subset = cfg.move_fraction_denom.max(1) as u64;
    order.clear();
    order.extend_from_slice(&st.movable);
    order.shuffle(rng);
    let mut scratch: Vec<(u64, f64, bool)> = Vec::new();
    let mut owned_moves = 0u64;
    let mut arcs_scanned = 0u64;
    let mut proposals: Vec<DelegateProposal> = Vec::new();
    for &li in order.iter() {
        // Partial parallelism: only a hashed 1/k subset of the vertices is
        // eligible per round, which bounds how many simultaneous joiners a
        // module can receive on stale statistics (over-merging guard).
        let v = st.verts[li as usize] as u64;
        if subset > 1 && !(v.wrapping_mul(0x9e3779b97f4a7c15) >> 32).wrapping_add(round as u64).is_multiple_of(subset)
        {
            continue;
        }
        arcs_scanned +=
            st.adj_off[li as usize + 1] as u64 - st.adj_off[li as usize] as u64;
        let Some(cand) = best_local_move(st, li, cfg.min_gain, restrict_boundary, &mut scratch)
        else {
            continue;
        };
        if st.is_delegate(li) {
            let target = st.modules.get(&cand.to_module).copied().unwrap_or_default();
            proposals.push(DelegateProposal {
                delegate: st.verts[li as usize],
                to_module: cand.to_module,
                delta: cand.delta,
                proposer: st.rank as u32,
                target_info: ModuleInfoMsg {
                    mod_id: cand.to_module,
                    flow: target.flow,
                    exit: target.exit,
                    members: target.members,
                    is_sent: false,
                },
            });
        } else {
            apply_local_move(st, li, &cand);
            owned_moves += 1;
        }
    }
    (owned_moves, arcs_scanned, proposals)
}

/// Phase 2: elect and apply delegate moves. Returns the number of
/// delegates moved (identical on every rank).
fn broadcast_delegates(
    comm: &mut Comm,
    st: &mut LocalState,
    proposals: Vec<DelegateProposal>,
    delegate_assign: &mut HashMap<u32, u64>,
) -> u64 {
    let all = comm.allgatherv(proposals);
    // Elect per delegate: minimal δL; ties by smaller target module id
    // (minimum label), then by proposer rank, making the election
    // deterministic and identical everywhere.
    let mut elected: HashMap<u32, &DelegateProposal> = HashMap::new();
    for p in all.iter() {
        let replace = match elected.get(&p.delegate) {
            None => true,
            Some(cur) => {
                p.delta < cur.delta - 1e-15
                    || ((p.delta - cur.delta).abs() <= 1e-15
                        && (p.to_module, p.proposer) < (cur.to_module, cur.proposer))
            }
        };
        if replace {
            elected.insert(p.delegate, p);
        }
    }
    let mut moved = 0u64;
    let mut winners: Vec<&DelegateProposal> = elected.values().copied().collect();
    winners.sort_by_key(|p| p.delegate);
    for p in winners {
        moved += 1;
        delegate_assign.insert(p.delegate, p.to_module);
        if let Some(&li) = st.index.get(&p.delegate) {
            if st.kind[li as usize] != VertexKind::DelegateCopy {
                continue;
            }
            if st.module_of[li as usize] == p.to_module {
                continue;
            }
            // Learn the target module from the proposal if unknown
            // (Algorithm 3 lines 23–24).
            st.modules.entry(p.to_module).or_insert(ModuleEntry {
                flow: p.target_info.flow,
                exit: p.target_info.exit,
                members: p.target_info.members,
            });
            // Recompute this copy's flows toward source/target and apply
            // the local share.
            let current = st.module_of[li as usize];
            let mut flow_to_current = 0.0;
            let mut flow_to_target = 0.0;
            for (tgt, w) in st.arcs_of(li) {
                if tgt == li {
                    continue;
                }
                let m = st.module_of[tgt as usize];
                let f = w * st.inv_two_w;
                if m == current {
                    flow_to_current += f;
                } else if m == p.to_module {
                    flow_to_target += f;
                }
            }
            comm.add_work(st.arcs_of(li).count() as u64);
            let cand = LocalCandidate {
                to_module: p.to_module,
                delta: p.delta,
                flow_to_current,
                flow_to_target,
            };
            apply_local_move(st, li, &cand);
        }
    }
    moved
}

/// Phase 3: swap boundary community IDs and `Module_Info` records with the
/// static neighbor ranks (Algorithm 3).
fn swap_boundary_info(comm: &mut Comm, st: &mut LocalState, full_swap: bool, round: u64) {
    // Build per-destination updates. `is_sent` marks modules already
    // included for that destination this round, so a module shared by
    // several boundary vertices travels once (Algorithm 3 lines 4–8).
    let mut updates: HashMap<usize, Vec<VertexUpdate>> = HashMap::new();
    let mut infos: HashMap<usize, Vec<ModuleInfoMsg>> = HashMap::new();
    let mut sent_to: HashMap<(usize, u64), ()> = HashMap::new();
    let mut announce: Vec<(u32, u64)> = Vec::new();
    for (v, subs) in &st.subscribers {
        let li = st.index[v];
        let m = st.module_of[li as usize];
        // Only changed assignments travel; subscribers' ghost views stay
        // exact because an update is emitted precisely on change.
        if st.last_announced.get(v) == Some(&m) {
            continue;
        }
        announce.push((*v, m));
        for &dest in subs {
            updates.entry(dest).or_default().push(VertexUpdate { vertex: *v, module: m });
            if full_swap {
                let entry = st.modules.get(&m).copied().unwrap_or_default();
                let already = sent_to.insert((dest, m), ()).is_some();
                infos.entry(dest).or_default().push(ModuleInfoMsg {
                    mod_id: m,
                    flow: entry.flow,
                    exit: entry.exit,
                    members: entry.members,
                    is_sent: already,
                });
            }
        }
    }
    for (v, m) in announce {
        st.last_announced.insert(v, m);
    }
    for &dest in &st.send_targets {
        let ups = updates.remove(&dest).unwrap_or_default();
        comm.send(dest, TAG_VERTEX_UPDATES + round * 16, ups);
        if full_swap {
            let inf = infos.remove(&dest).unwrap_or_default();
            comm.send(dest, TAG_MODULE_INFO + round * 16, inf);
        }
    }
    let providers = st.providers.clone();
    for &src in &providers {
        let ups: Vec<VertexUpdate> = comm.recv(src, TAG_VERTEX_UPDATES + round * 16);
        for u in ups {
            if let Some(&li) = st.index.get(&u.vertex) {
                st.module_of[li as usize] = u.module;
            }
            comm.add_work(1);
        }
        if full_swap {
            let infos: Vec<ModuleInfoMsg> = comm.recv(src, TAG_MODULE_INFO + round * 16);
            for m in infos {
                if m.is_sent {
                    continue; // duplicate within this swap — skip
                }
                // Unknown modules are built from the received info; known
                // ones keep the local view (the owner reduction will
                // reconcile exactly at the end of the round).
                st.modules.entry(m.mod_id).or_insert(ModuleEntry {
                    flow: m.flow,
                    exit: m.exit,
                    members: m.members,
                });
                comm.add_work(1);
            }
        }
    }
}

/// Phase 4 ("Other"): delta-based owner reduction of module statistics,
/// exact global MDL, and change-driven redistribution.
///
/// Every rank recomputes its exact local contribution to each module it
/// touches (vertex flows and member counts of its owned vertices and
/// delegate shares; exit flows of its arcs — each arc lives on exactly one
/// rank), but only contributions that **changed** since the previous sync
/// travel to the module owners (`modID mod p`). Owners maintain running
/// totals plus per-source records and send refreshed `Module_Info` only
/// for modules whose totals changed, and only to their current
/// subscribers. The totals are therefore exact every round, while the
/// traffic and the owner work shrink with the move rate instead of
/// costing O(p) per popular module per round.
pub fn sync_modules(
    comm: &mut Comm,
    st: &mut LocalState,
    node_term: f64,
    full_swap: bool,
) -> (f64, u64) {
    let p = st.nranks;
    // ---- 1. Fresh local contributions (exact, O(local arcs)). ----
    let mut contrib: HashMap<u64, (f64, f64, u32)> = HashMap::new();
    for li in 0..st.verts.len() {
        let m = st.module_of[li];
        let e = contrib.entry(m).or_insert((0.0, 0.0, 0));
        match st.kind[li] {
            VertexKind::Owned => {
                e.0 += st.node_flow[li];
                e.2 += 1;
            }
            VertexKind::DelegateCopy => {
                e.0 += st.node_flow[li];
                // The member is counted once, by the delegate's 1D owner.
                if (st.verts[li] as usize) % p == st.rank {
                    e.2 += 1;
                }
            }
            VertexKind::Ghost => {}
        }
    }
    let mut arcs_scanned = 0u64;
    for li in 0..st.verts.len() as u32 {
        if st.kind[li as usize] == VertexKind::Ghost {
            continue;
        }
        let m_src = st.module_of[li as usize];
        for (tgt, w) in st.arcs_of(li) {
            arcs_scanned += 1;
            if tgt == li {
                continue;
            }
            let m_dst = st.module_of[tgt as usize];
            if m_src != m_dst {
                contrib.entry(m_src).or_insert((0.0, 0.0, 0)).1 += w * st.inv_two_w;
                // Subscribe to the neighbor module too (zero contribution).
                contrib.entry(m_dst).or_insert((0.0, 0.0, 0));
            }
        }
    }
    comm.add_work(arcs_scanned);

    // ---- 2. Diff against what was last shipped; ship changes only. ----
    let mut outgoing: Vec<Vec<ModuleContribution>> = vec![Vec::new(); p];
    let changed = |old: &(f64, f64, u32), new: &(f64, f64, u32)| {
        (old.0 - new.0).abs() > 1e-15 || (old.1 - new.1).abs() > 1e-15 || old.2 != new.2
    };
    for (&m, c) in &contrib {
        let is_new = !st.last_contrib.contains_key(&m);
        let dirty = match st.last_contrib.get(&m) {
            Some(old) => changed(old, c),
            None => true,
        };
        if dirty || is_new {
            outgoing[(m % p as u64) as usize].push(ModuleContribution {
                mod_id: m,
                flow: c.0,
                exit: c.1,
                members: c.2,
                retract: false,
            });
        }
    }
    // Modules this rank no longer touches: retract with a zero record.
    let gone: Vec<u64> =
        st.last_contrib.keys().filter(|m| !contrib.contains_key(m)).copied().collect();
    for m in gone {
        outgoing[(m % p as u64) as usize].push(ModuleContribution {
            mod_id: m,
            flow: 0.0,
            exit: 0.0,
            members: 0,
            retract: true,
        });
        st.modules.remove(&m);
    }
    st.last_contrib = contrib;
    for bucket in &mut outgoing {
        bucket.sort_by_key(|c| c.mod_id);
    }
    let incoming = comm.alltoallv(outgoing);

    // ---- 3. Owner: apply deltas to running totals. ----
    // (module, src) pairs whose stats must be (re)published.
    let mut changed_modules: Vec<u64> = Vec::new();
    let mut forced: Vec<(u64, usize)> = Vec::new(); // new subscribers
    for (src, msgs) in incoming.iter().enumerate() {
        for c in msgs {
            comm.add_work(1);
            let key = (c.mod_id, src as u32);
            let old = st.owner_sources.get(&key).copied().unwrap_or((0.0, 0.0, 0));
            let entry = st.owned_modules.entry(c.mod_id).or_default();
            entry.flow += c.flow - old.0;
            entry.exit += c.exit - old.1;
            entry.members = (entry.members + c.members) - old.2;
            let retraction = c.retract;
            let subs = st.owner_subs.entry(c.mod_id).or_default();
            if retraction {
                st.owner_sources.remove(&key);
                if let Ok(pos) = subs.binary_search(&src) {
                    subs.remove(pos);
                }
            } else {
                st.owner_sources.insert(key, (c.flow, c.exit, c.members));
                if let Err(pos) = subs.binary_search(&src) {
                    subs.insert(pos, src);
                    forced.push((c.mod_id, src));
                }
            }
            if changed(&old, &(c.flow, c.exit, c.members)) {
                changed_modules.push(c.mod_id);
            }
        }
    }
    changed_modules.sort_unstable();
    changed_modules.dedup();
    // Drop empty modules.
    for m in &changed_modules {
        let dead = st
            .owned_modules
            .get(m)
            .map(|t| t.members == 0 && t.flow <= 1e-15)
            .unwrap_or(false);
        if dead {
            st.owned_modules.remove(m);
        }
    }

    // ---- 4. Exact global MDL from the owners' totals. ----
    let (sum_exit, s_plogp_exit, s_plogp_both, nmod) = {
        let mut q = 0.0;
        let mut s1 = 0.0;
        let mut s2 = 0.0;
        let mut k = 0u64;
        // Sorted iteration keeps the floating-point sums deterministic.
        let mut ids: Vec<u64> = st.owned_modules.keys().copied().collect();
        ids.sort_unstable();
        for m in ids {
            let t = &st.owned_modules[&m];
            let exit = t.exit.max(0.0);
            q += exit;
            s1 += plogp(exit);
            s2 += plogp(exit + t.flow.max(0.0));
            k += 1;
        }
        comm.add_work(st.owned_modules.len() as u64);
        let red = comm.allreduce_with((q, s1, s2, k), |parts| {
            parts.into_iter().fold((0.0, 0.0, 0.0, 0u64), |acc, x| {
                (acc.0 + x.0, acc.1 + x.1, acc.2 + x.2, acc.3 + x.3)
            })
        });
        *red
    };
    let mdl = plogp(sum_exit) - 2.0 * s_plogp_exit - node_term + s_plogp_both;

    // ---- 5. Publish refreshed stats for changed modules (plus current
    //         stats to brand-new subscribers). ----
    if full_swap {
        let mut responses: Vec<Vec<ModuleInfoMsg>> = vec![Vec::new(); p];
        let mut queue: Vec<(u64, usize)> = Vec::new();
        for &m in &changed_modules {
            if let Some(subs) = st.owner_subs.get(&m) {
                for &r in subs {
                    queue.push((m, r));
                }
            }
        }
        queue.extend(forced.iter().copied());
        queue.sort_unstable();
        queue.dedup();
        for (m, r) in queue {
            let t = st.owned_modules.get(&m).copied().unwrap_or_default();
            responses[r].push(ModuleInfoMsg {
                mod_id: m,
                flow: t.flow,
                exit: t.exit,
                members: t.members,
                is_sent: false,
            });
            comm.add_work(1);
        }
        let received = comm.alltoallv(responses);
        for msgs in received {
            for m in msgs {
                if m.members == 0 && m.flow <= 1e-15 {
                    st.modules.remove(&m.mod_id);
                } else {
                    st.modules.insert(
                        m.mod_id,
                        ModuleEntry { flow: m.flow, exit: m.exit, members: m.members },
                    );
                }
                comm.add_work(1);
            }
        }
        st.sum_exit = sum_exit;
    } else {
        // Naive-swap ablation: no stat redistribution; local views drift.
        st.sum_exit = sum_exit;
    }

    (mdl, nmod)
}

/// Resumable position inside a clustering stage: everything
/// [`cluster_stage_recoverable`] needs (besides the [`LocalState`] itself)
/// to continue from a round boundary exactly as if it had never stopped —
/// including the rank's RNG, so the replayed sweep orders are
/// bit-identical to the uninterrupted run.
#[derive(Clone, Debug)]
pub struct StageCursor {
    /// The next round to execute.
    pub next_round: usize,
    /// MDL and module count as of the last sync.
    pub mdl: f64,
    pub nmod: u64,
    pub mdl_series: Vec<f64>,
    pub total_moves: u64,
    pub inner: usize,
    pub quiet_rounds: usize,
    pub stalled_syncs: usize,
    /// The rank's sweep-order RNG, captured mid-stream.
    pub rng: StdRng,
}

/// Run one clustering stage to convergence (Algorithm 2 lines 2–7 with
/// delegates, lines 10–14 without — the state's delegate set decides).
pub fn cluster_stage(
    comm: &mut Comm,
    st: &mut LocalState,
    cfg: &DistributedConfig,
    node_term: f64,
    delegate_assign: &mut HashMap<u32, u64>,
    stage_prefix: &str,
) -> StageOutcome {
    cluster_stage_recoverable(
        comm,
        st,
        cfg,
        node_term,
        delegate_assign,
        stage_prefix,
        None,
        0,
        &mut |_, _, _, _| {},
    )
}

/// A checkpoint hook: called at a committed round boundary with the
/// communicator (inside the "Checkpoint" phase, after the consensus
/// collective), the clustering state, the delegate assignment and the
/// cursor to resume from.
pub type CheckpointHook<'a> =
    &'a mut dyn FnMut(&mut Comm, &LocalState, &HashMap<u32, u64>, &StageCursor);

/// [`cluster_stage`] with round-boundary checkpointing and resume.
///
/// With `resume = Some(cursor)` the stage skips the Init sync (the restored
/// state already carries exact module statistics) and continues at
/// `cursor.next_round` with the captured RNG. With `checkpoint_every > 0`,
/// after every `checkpoint_every`-th completed round that did not end the
/// stage, all ranks pass a consensus collective and then invoke
/// `on_checkpoint` with no communication event in between — so either every
/// rank commits the boundary or (if a crash fires at or before the
/// collective) none does, keeping the checkpoint store globally consistent.
#[allow(clippy::too_many_arguments)]
pub fn cluster_stage_recoverable(
    comm: &mut Comm,
    st: &mut LocalState,
    cfg: &DistributedConfig,
    node_term: f64,
    delegate_assign: &mut HashMap<u32, u64>,
    stage_prefix: &str,
    resume: Option<StageCursor>,
    checkpoint_every: usize,
    on_checkpoint: CheckpointHook<'_>,
) -> StageOutcome {
    let ph = |name: &str| format!("{stage_prefix}{name}");
    let mut rng;
    let mut order: Vec<u32> = Vec::new();
    let mut mdl_series;
    let mut total_moves;
    let mut inner;
    let mut quiet_rounds;
    let mut stalled_syncs;
    let mut mdl;
    let mut nmod;
    let start_round;
    match resume {
        Some(cur) => {
            rng = cur.rng;
            mdl_series = cur.mdl_series;
            total_moves = cur.total_moves;
            inner = cur.inner;
            quiet_rounds = cur.quiet_rounds;
            stalled_syncs = cur.stalled_syncs;
            mdl = cur.mdl;
            nmod = cur.nmod;
            start_round = cur.next_round;
        }
        None => {
            rng = StdRng::seed_from_u64(
                cfg.seed ^ (st.rank as u64).wrapping_mul(0x9e3779b97f4a7c15),
            );
            mdl_series = Vec::new();
            total_moves = 0;
            inner = 0;
            quiet_rounds = 0;
            stalled_syncs = 0;
            // Round 0: establish exact module statistics and the initial
            // MDL. This ships every singleton module's record once — the
            // table setup a real implementation does during preprocessing —
            // so it is metered as "Init", not amortized into the
            // per-iteration "Other" phase that Figure 8 breaks down.
            let (mdl0, nmod0) =
                comm.phase(&ph("Init"), |c| sync_modules(c, st, node_term, cfg.full_module_swap));
            mdl = mdl0;
            nmod = nmod0;
            mdl_series.push(mdl);
            start_round = 0;
        }
    }
    let sync_interval = cfg.sync_interval.max(1);
    let cycle = cfg.move_fraction_denom.max(1) as usize;

    for round in start_round..cfg.max_inner_iterations {
        inner += 1;
        let (owned_moves, proposals) = comm.phase(&ph("FindBestModule"), |c| {
            let (moves, arcs_scanned, proposals) =
                find_best_modules(st, cfg, &mut rng, &mut order, round);
            c.add_work(arcs_scanned);
            (moves, proposals)
        });

        let delegate_moves = comm.phase(&ph("BroadcastDelegates"), |c| {
            broadcast_delegates(c, st, proposals, delegate_assign)
        });

        comm.phase(&ph("SwapBoundaryInfo"), |c| {
            swap_boundary_info(c, st, cfg.full_module_swap, round as u64 + 1)
        });

        let round_moves = comm.phase(&ph("Other"), |c| {
            c.allreduce_u64(owned_moves, ReduceOp::Sum) + delegate_moves
        });
        total_moves += round_moves;

        // With partial parallelism a single quiet round can simply mean
        // the eligible subset had nothing to do; only a full mask cycle of
        // quiet rounds means the stage converged.
        if round_moves == 0 {
            quiet_rounds += 1;
        } else {
            quiet_rounds = 0;
        }
        let quiesced = quiet_rounds >= cycle;

        // Exact owner reduction (and exact global MDL) every
        // `sync_interval` rounds and at convergence; between syncs, module
        // information travels by the gossip of Algorithm 3 only, keeping
        // the per-round "Other" cost local, as in the paper.
        let due = (round + 1) % sync_interval == 0;
        if due || quiesced || round + 1 == cfg.max_inner_iterations {
            let (new_mdl, new_nmod) = comm
                .phase(&ph("Other"), |c| sync_modules(c, st, node_term, cfg.full_module_swap));
            mdl_series.push(new_mdl);
            let improved = mdl - new_mdl;
            mdl = new_mdl;
            nmod = new_nmod;
            if improved < cfg.theta {
                stalled_syncs += 1;
            } else {
                stalled_syncs = 0;
            }
            // Anti-bouncing safety valve: two consecutive syncs without
            // MDL improvement end the stage (the merge consolidates).
            if quiesced || stalled_syncs >= 2 {
                break;
            }
        }

        // Round-boundary checkpoint: only at boundaries the stage will
        // continue past, so a restored run replays the identical remainder.
        if checkpoint_every > 0
            && (round + 1) % checkpoint_every == 0
            && round + 1 < cfg.max_inner_iterations
        {
            let cursor = StageCursor {
                next_round: round + 1,
                mdl,
                nmod,
                mdl_series: mdl_series.clone(),
                total_moves,
                inner,
                quiet_rounds,
                stalled_syncs,
                rng: rng.clone(),
            };
            comm.phase(&ph("Checkpoint"), |c| {
                // Consensus collective: every rank reaches the boundary
                // before anyone commits. A crash firing at or before this
                // collective poisons the world with *no* rank committed;
                // past it, every rank commits before its next communication
                // event (its next crash opportunity). All-or-nothing.
                c.allreduce_u64(round as u64, ReduceOp::Min);
                on_checkpoint(c, st, delegate_assign, &cursor);
            });
        }
    }

    StageOutcome { inner_iterations: inner, total_moves, mdl, mdl_series, num_modules: nmod }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::build_stage1_states;
    use infomap_graph::generators;
    use infomap_mpisim::World;
    use infomap_partition::{DelegateThreshold, Partition};

    fn run_sync_rounds(
        p: usize,
        rounds: usize,
        full_swap: bool,
    ) -> Vec<(f64, u64)> {
        let (g, _) = generators::lfr_like(
            generators::LfrParams { n: 200, mu: 0.25, ..Default::default() },
            3,
        );
        let partition = Partition::delegate(&g, p, DelegateThreshold::Auto(4.0), true);
        let states = build_stage1_states(&g, &partition);
        let slots: Vec<std::sync::Mutex<Option<crate::state::LocalState>>> =
            states.into_iter().map(|s| std::sync::Mutex::new(Some(s))).collect();
        let inv_two_w = 1.0 / (2.0 * g.total_weight());
        let node_term: f64 = (0..g.num_vertices() as u32)
            .map(|v| plogp(g.strength(v) * inv_two_w))
            .sum();
        let cfg = DistributedConfig { nranks: p, full_module_swap: full_swap, ..Default::default() };
        let report = World::new(p).run(|comm| {
            let mut st = slots[comm.rank()].lock().unwrap().take().unwrap();
            let mut out = Vec::new();
            for _ in 0..rounds {
                out.push(sync_modules(comm, &mut st, node_term, cfg.full_module_swap));
            }
            out
        });
        report.results[0].clone()
    }

    #[test]
    fn repeated_syncs_without_moves_are_stable() {
        // With no moves between syncs, the delta reduction must ship
        // nothing new and report the identical MDL and module count.
        let series = run_sync_rounds(3, 4, true);
        let (mdl0, n0) = series[0];
        for &(mdl, n) in &series[1..] {
            assert_eq!(n, n0);
            assert!((mdl - mdl0).abs() < 1e-12, "MDL drifted: {mdl0} -> {mdl}");
        }
    }

    #[test]
    fn initial_sync_counts_every_vertex_as_a_singleton() {
        let series = run_sync_rounds(4, 1, true);
        // 200 vertices -> 200 singleton modules at the first sync.
        assert_eq!(series[0].1, 200);
    }

    #[test]
    fn naive_swap_mode_still_reports_exact_mdl() {
        // full_module_swap=false skips redistribution but the owner-side
        // MDL must match the full-swap value for the same assignments.
        let a = run_sync_rounds(3, 1, true);
        let b = run_sync_rounds(3, 1, false);
        assert!((a[0].0 - b[0].0).abs() < 1e-12);
        assert_eq!(a[0].1, b[0].1);
    }

    #[test]
    fn delta_codelength_is_zero_for_identity_move() {
        let from = ModuleEntry { flow: 0.2, exit: 0.1, members: 3 };
        let to = ModuleEntry { flow: 0.2, exit: 0.1, members: 3 };
        // Moving a vertex with zero flow and zero links changes nothing.
        let d = delta_codelength(0.4, &from, &to, 0.0, 0.0, 0.0, 0.0);
        assert!(d.abs() < 1e-12);
    }

    #[test]
    fn delta_codelength_favors_joining_a_connected_module() {
        // Vertex with flow 0.1, all of its 0.1 out-flow pointing into the
        // target module: joining removes boundary flow on both sides.
        let from = ModuleEntry { flow: 0.1, exit: 0.1, members: 1 };
        let to = ModuleEntry { flow: 0.3, exit: 0.15, members: 3 };
        let join =
            delta_codelength(0.5, &from, &to, 0.1, 0.1, 0.0, 0.1);
        // The same vertex moving to an unconnected module of equal size.
        let elsewhere = ModuleEntry { flow: 0.3, exit: 0.15, members: 3 };
        let stray =
            delta_codelength(0.5, &from, &elsewhere, 0.1, 0.1, 0.0, 0.0);
        assert!(join < stray, "join {join} should beat stray {stray}");
        assert!(join < 0.0, "joining a connected module should gain: {join}");
    }
}
