//! The synchronized clustering rounds shared by both stages of the
//! paper's Algorithm 2.
//!
//! Each inner round runs four metered phases, named as in Figure 8:
//!
//! 1. **FindBestModule** — every rank sweeps its movable vertices in random
//!    order; owned low-degree vertices move immediately, delegate copies
//!    only produce proposals.
//! 2. **BroadcastDelegates** — delegate proposals are allgathered; the
//!    proposal with the globally minimal δL wins per delegate
//!    (minimum-label tie-break) and is applied identically on all ranks.
//! 3. **SwapBoundaryInfo** — boundary community IDs plus full
//!    `Module_Info` records (Algorithm 3, with `is_sent` duplicate
//!    suppression) travel point-to-point to the static neighbor ranks.
//! 4. **Other** — module statistics are re-established exactly by an
//!    owner-rank reduction (modID → rank `modID mod p`), the global MDL is
//!    computed from the owners' partial sums, and the round's move count is
//!    allreduced to decide termination.
//!
//! The owner reduction is the crate's realization of the paper's "swap the
//! whole community information of each boundary vertex": every rank that
//! touches a module contributes its exact local share (vertex flows for
//! members, arc flows for exits — each arc lives on exactly one rank) and
//! receives the exact total back. It composes with the gossip of phase 3,
//! which lets neighbors learn *new* module ids mid-round.
//!
//! # Hot-path kernels (DESIGN.md §6.12)
//!
//! The per-rank compute is organized around three ideas:
//!
//! * **Module-ID interning** — [`LocalState`] stores module assignments as
//!   dense slots (`u32` indices into the SoA stat arrays), so every stat lookup
//!   in the sweep is array indexing; global `u64` ids appear only on the
//!   wire (messages are unchanged).
//! * **Epoch-stamped dense accumulators** — [`best_local_move`] aggregates
//!   neighbor-module flow in a [`NeighborhoodScratch`] (an
//!   [`infomap_core::StampedSlotMap`]) in O(deg) per vertex, replacing the
//!   O(deg·k) scratch-vec scan; `sync_modules` builds its contribution
//!   table the same way instead of hashing per arc. Results are
//!   bit-identical: the stamped map yields candidates in the scan's push
//!   order, and min-label / tie-break comparisons still use global ids.
//!   The legacy scan survives as [`best_local_move_scan`]
//!   ([`MoveKernel::LegacyScan`]) for baselining and ablation.
//! * **Zero-alloc rounds** — all per-round scratch ([`RoundBuffers`])
//!   persists across rounds: sweep order, election index, boundary-send
//!   staging, contribution diff state and the sorted-ID vec of the MDL
//!   reduction. Steady-state rounds allocate only the wire payloads the
//!   fabric takes ownership of (as a real MPI transport would).
//!
//! `comm.add_work` keeps metering *logical* arc relaxations (arcs scanned
//! by the sweep, per-record reduction work), so modeled runtimes stay
//! comparable across kernels even though the wall-clock per unit changed.

use std::collections::{BTreeMap, HashSet};

use infomap_core::{plogp, StampedSlotMap};
use infomap_mpisim::{Comm, ReduceOp};
use rand::prelude::*;
use rand::rngs::StdRng;

use crate::codec;
use crate::config::{CommPath, DistributedConfig, MoveKernel};
use crate::messages::{DelegateProposal, ModuleContribution, ModuleInfoMsg, VertexUpdate};
use crate::state::{LocalState, ModuleEntry, VertexKind};

/// Result of one clustering stage (a run of inner rounds to convergence).
#[derive(Clone, Debug)]
pub struct StageOutcome {
    /// Synchronized inner rounds executed.
    pub inner_iterations: usize,
    /// Total vertex moves (owned moves summed over ranks + elected
    /// delegate moves).
    pub total_moves: u64,
    /// Exact global MDL after the stage.
    pub mdl: f64,
    /// Exact global MDL after every sync (index 0 = singleton/initial).
    pub mdl_series: Vec<f64>,
    /// Number of non-empty modules after the stage.
    pub num_modules: u64,
}

/// Tag bases for point-to-point boundary traffic.
const TAG_VERTEX_UPDATES: u64 = 0x10;
const TAG_MODULE_INFO: u64 = 0x11;
/// Fused updates+infos packet of the compact path (one message per
/// neighbor instead of two).
const TAG_BOUNDARY_PACKET: u64 = 0x12;

/// Per-vertex neighborhood accumulator: module slot → (flow, seen via a
/// ghost arc). Epoch-stamped, so starting the next vertex is O(1).
pub type NeighborhoodScratch = StampedSlotMap<(f64, bool)>;

/// All reusable per-round scratch of one rank. Created once per clustering
/// stage; steady-state rounds then allocate nothing besides the wire
/// payloads handed to the communicator.
#[derive(Debug)]
pub struct RoundBuffers {
    /// Stamped accumulator of [`best_local_move`].
    pub neigh: NeighborhoodScratch,
    /// Scratch vec of the legacy scan kernel ([`MoveKernel::LegacyScan`]).
    pub scan: Vec<(u32, f64, bool)>,
    /// Shuffled sweep order.
    order: Vec<u32>,
    /// Delegate election: delegate id → index into the allgathered
    /// proposals.
    elected: BTreeMap<u32, usize>,
    /// Sorted winning proposal indices.
    winners: Vec<usize>,
    /// Compact election: proposal staging per owner rank
    /// (`delegate mod p`).
    prop_out: Vec<Vec<DelegateProposal>>,
    /// Boundary-update staging, one bucket per destination rank.
    updates: Vec<Vec<VertexUpdate>>,
    /// `Module_Info` staging, one bucket per destination rank.
    infos: Vec<Vec<ModuleInfoMsg>>,
    /// Per-destination duplicate suppression (`is_sent`), on module slots.
    sent_to: HashSet<(usize, u32)>,
    /// Deferred `last_announced` writes of the current swap.
    announce: Vec<(u32, u64)>,
    /// Stamped contribution accumulator of `sync_modules`:
    /// slot → (flow, exit, members).
    contrib: StampedSlotMap<(f64, f64, u32)>,
    /// Contribution staging for the owner alltoallv, per destination.
    contrib_out: Vec<Vec<ModuleContribution>>,
    /// Refreshed-stat staging for the publish alltoallv, per destination.
    info_out: Vec<Vec<ModuleInfoMsg>>,
    /// Owner-side: modules whose totals changed this sync.
    changed_modules: Vec<u64>,
    /// Owner-side: brand-new (module, subscriber) pairs.
    forced: Vec<(u64, usize)>,
    /// Owner-side publish queue of (module, subscriber rank).
    queue: Vec<(u64, usize)>,
    /// Sorted owned-module ids, reused by every MDL reduction.
    sorted_ids: Vec<u64>,
    /// Round-eligible vertices in shuffled order (the subset-gate survivors
    /// of `order`) — the one sequence every thread count slices identically.
    eligible: Vec<u32>,
    /// Arc-balanced slice boundaries over `eligible`: `cuts[s]..cuts[s+1]`
    /// is worker `s`'s contiguous range.
    cuts: Vec<usize>,
    /// Per-worker evaluation scratch, grown on demand to `cfg.threads`.
    slices: Vec<SliceScratch>,
}

/// One worker thread's private evaluation scratch: its own stamped
/// accumulator (and legacy-scan vec), the cache-blocked walk order, and
/// the slice's results keyed by position so the merge can replay them in
/// the global shuffled order.
#[derive(Debug, Default)]
pub struct SliceScratch {
    /// Per-slice [`best_local_move`] accumulator.
    neigh: NeighborhoodScratch,
    /// Per-slice scratch of the legacy scan kernel.
    scan: Vec<(u32, f64, bool)>,
    /// `(local vertex, position-in-slice)` pairs, block-sorted by local
    /// index so CSR reads stream within each block.
    walk: Vec<(u32, u32)>,
    /// Candidate per slice position (`None` = no admissible move).
    out: Vec<Option<LocalCandidate>>,
    /// Arcs scanned by this slice (exact counter; summed slice-order).
    arcs: u64,
}

impl RoundBuffers {
    pub fn new(nranks: usize) -> Self {
        RoundBuffers {
            neigh: NeighborhoodScratch::new(),
            scan: Vec::new(),
            order: Vec::new(),
            elected: BTreeMap::new(),
            winners: Vec::new(),
            prop_out: vec![Vec::new(); nranks],
            updates: vec![Vec::new(); nranks],
            infos: vec![Vec::new(); nranks],
            sent_to: HashSet::new(),
            announce: Vec::new(),
            contrib: StampedSlotMap::new(),
            contrib_out: vec![Vec::new(); nranks],
            info_out: vec![Vec::new(); nranks],
            changed_modules: Vec::new(),
            forced: Vec::new(),
            queue: Vec::new(),
            sorted_ids: Vec::new(),
            eligible: Vec::new(),
            cuts: Vec::new(),
            slices: Vec::new(),
        }
    }

    /// Arcs scanned by each slice of the most recent sweep, in slice
    /// order. Perf-harness introspection: the per-round critical path of
    /// the slice-parallel sweep is the max of these, the serial cost
    /// their sum — the modeled thread speedup is their ratio.
    pub fn slice_arcs(&self) -> impl Iterator<Item = u64> + '_ {
        // `slices` grows on demand and never shrinks; `cuts` has exactly
        // t+1 entries from the last sweep, so this never reads a stale
        // tail from an earlier, wider sweep.
        self.slices
            .iter()
            .take(self.cuts.len().saturating_sub(1))
            .map(|s| s.arcs)
    }
}

/// δL of moving a vertex (share) with flow `p_u` and local out-flow
/// `out_u` from `from` to `to`, given the current total exit flow.
/// Mirrors `infomap_core::Partitioning::delta` over module statistics.
#[inline]
fn delta_codelength(
    sum_exit: f64,
    from: &ModuleEntry,
    to: &ModuleEntry,
    p_u: f64,
    out_u: f64,
    flow_to_current: f64,
    flow_to_target: f64,
) -> f64 {
    let q_i = from.exit;
    let p_i = from.flow;
    let q_j = to.exit;
    let p_j = to.flow;
    let q_i_new = (q_i - out_u + 2.0 * flow_to_current).max(0.0);
    let q_j_new = (q_j + out_u - 2.0 * flow_to_target).max(0.0);
    let p_i_new = (p_i - p_u).max(0.0);
    let p_j_new = p_j + p_u;
    let q_new = (sum_exit + (q_i_new - q_i) + (q_j_new - q_j)).max(0.0);
    plogp(q_new)
        - plogp(sum_exit)
        - 2.0 * (plogp(q_i_new) - plogp(q_i) + plogp(q_j_new) - plogp(q_j))
        + plogp(q_i_new + p_i_new)
        - plogp(q_i + p_i)
        + plogp(q_j_new + p_j_new)
        - plogp(q_j + p_j)
}

/// A locally evaluated candidate move (target as an interned module slot).
#[derive(Clone, Copy, Debug)]
pub struct LocalCandidate {
    pub to_slot: u32,
    pub delta: f64,
    pub flow_to_current: f64,
    pub flow_to_target: f64,
}

/// Scan the local arcs of `li` and return the best admissible move —
/// the stamped-accumulator kernel: O(deg) per vertex.
///
/// `min_label` implements the paper's anti-bouncing rule: a move whose
/// target module was discovered through a *ghost* arc (a boundary
/// community) is only admissible toward a smaller module id. Label
/// comparisons use **global** module ids, so results are independent of
/// the rank-local interning order.
///
/// Exposed (with [`best_local_move_scan`]) for the criterion microbench
/// and the `perf_kernels` harness.
pub fn best_local_move(
    st: &LocalState,
    li: u32,
    min_gain: f64,
    min_label: bool,
    scratch: &mut NeighborhoodScratch,
) -> Option<LocalCandidate> {
    scratch.begin(st.num_module_slots());
    let current = st.module_of[li as usize];
    let mut flow_to_current = 0.0;
    for (tgt, w) in st.arcs_of(li) {
        if tgt == li {
            continue;
        }
        let f = w * st.inv_two_w;
        let m = st.module_of[tgt as usize];
        let ghost = st.kind[tgt as usize] == VertexKind::Ghost;
        if m == current {
            flow_to_current += f;
        } else {
            scratch.update(m, |e| {
                e.0 += f;
                e.1 |= ghost;
            });
        }
    }
    if scratch.is_empty() {
        return None;
    }
    let from = st.module_entry(current);
    let current_gid = st.module_ids[current as usize];
    let p_u = st.node_flow[li as usize];
    let out_u = st.out_flow[li as usize];
    let mut best: Option<LocalCandidate> = None;
    let mut best_gid = u64::MAX;
    for &m in scratch.touched() {
        let (flow_to_target, via_ghost) = scratch.get(m);
        let gid = st.module_ids[m as usize];
        if min_label && via_ghost && gid >= current_gid {
            continue; // boundary community: minimum-label rule
        }
        let to = st.module_entry(m);
        let delta = delta_codelength(
            st.sum_exit,
            &from,
            &to,
            p_u,
            out_u,
            flow_to_current,
            flow_to_target,
        );
        if delta >= -min_gain {
            continue;
        }
        let better = match &best {
            None => true,
            Some(b) => {
                delta < b.delta - 1e-12 || ((delta - b.delta).abs() <= 1e-12 && gid < best_gid)
            }
        };
        if better {
            best = Some(LocalCandidate {
                to_slot: m,
                delta,
                flow_to_current,
                flow_to_target,
            });
            best_gid = gid;
        }
    }
    best
}

/// The pre-interning linear-scan kernel (O(deg·k) per vertex): accumulates
/// neighbor-module flow by scanning a scratch vec. Kept as the measurable
/// baseline ([`MoveKernel::LegacyScan`]) and as a bit-for-bit cross-check
/// of the stamped kernel.
pub fn best_local_move_scan(
    st: &LocalState,
    li: u32,
    min_gain: f64,
    min_label: bool,
    scratch: &mut Vec<(u32, f64, bool)>,
) -> Option<LocalCandidate> {
    scratch.clear();
    let current = st.module_of[li as usize];
    let mut flow_to_current = 0.0;
    for (tgt, w) in st.arcs_of(li) {
        if tgt == li {
            continue;
        }
        let f = w * st.inv_two_w;
        let m = st.module_of[tgt as usize];
        let ghost = st.kind[tgt as usize] == VertexKind::Ghost;
        if m == current {
            flow_to_current += f;
        } else {
            match scratch.iter_mut().find(|(mm, _, _)| *mm == m) {
                Some((_, acc, b)) => {
                    *acc += f;
                    *b |= ghost;
                }
                None => scratch.push((m, f, ghost)),
            }
        }
    }
    if scratch.is_empty() {
        return None;
    }
    let from = st.module_entry(current);
    let current_gid = st.module_ids[current as usize];
    let p_u = st.node_flow[li as usize];
    let out_u = st.out_flow[li as usize];
    let mut best: Option<LocalCandidate> = None;
    let mut best_gid = u64::MAX;
    for &(m, flow_to_target, via_ghost) in scratch.iter() {
        let gid = st.module_ids[m as usize];
        if min_label && via_ghost && gid >= current_gid {
            continue; // boundary community: minimum-label rule
        }
        let to = st.module_entry(m);
        let delta = delta_codelength(
            st.sum_exit,
            &from,
            &to,
            p_u,
            out_u,
            flow_to_current,
            flow_to_target,
        );
        if delta >= -min_gain {
            continue;
        }
        let better = match &best {
            None => true,
            Some(b) => {
                delta < b.delta - 1e-12 || ((delta - b.delta).abs() <= 1e-12 && gid < best_gid)
            }
        };
        if better {
            best = Some(LocalCandidate {
                to_slot: m,
                delta,
                flow_to_current,
                flow_to_target,
            });
            best_gid = gid;
        }
    }
    best
}

/// Apply a move to the rank's local view (module table + assignment +
/// exit-sum estimate). For delegate copies this applies the local share;
/// the next owner reduction restores exact statistics.
///
/// Public (with the kernels) for the benchmark harnesses, which replay
/// sweeps outside a communicator.
pub fn apply_local_move(st: &mut LocalState, li: u32, c: &LocalCandidate) {
    let from_slot = st.module_of[li as usize] as usize;
    let to_slot = c.to_slot as usize;
    let p_u = st.node_flow[li as usize];
    let out_u = st.out_flow[li as usize];

    // Mirrors `entry().or_default()`: touching a module makes it present.
    st.module_present[from_slot] = true;
    let q_i_old = st.mod_exit[from_slot];
    st.mod_exit[from_slot] = (q_i_old - out_u + 2.0 * c.flow_to_current).max(0.0);
    st.mod_flow[from_slot] = (st.mod_flow[from_slot] - p_u).max(0.0);
    st.mod_members[from_slot] = st.mod_members[from_slot].saturating_sub(1);
    let dq_i = st.mod_exit[from_slot] - q_i_old;

    st.module_present[to_slot] = true;
    let q_j_old = st.mod_exit[to_slot];
    st.mod_exit[to_slot] = (q_j_old + out_u - 2.0 * c.flow_to_target).max(0.0);
    st.mod_flow[to_slot] += p_u;
    st.mod_members[to_slot] += 1;
    let dq_j = st.mod_exit[to_slot] - q_j_old;

    st.sum_exit = (st.sum_exit + dq_i + dq_j).max(0.0);
    st.module_of[li as usize] = c.to_slot;
}

/// Cache-block size (vertices) for the slice walk: one block of CSR spans
/// fits comfortably in L1/L2, and within a block vertices are visited in
/// ascending local index so adjacency reads stream instead of hopping with
/// the shuffle.
const EVAL_BLOCK: usize = 512;

/// Evaluate one contiguous slice of the eligible order against the frozen
/// round-start state. Pure reads of `st`; every result lands at the
/// vertex's *position within the slice*, so the cache-blocked visit order
/// below never leaks into the merge.
fn eval_slice(
    st: &LocalState,
    cfg: &DistributedConfig,
    restrict_boundary: bool,
    slice: &[u32],
    scratch: &mut SliceScratch,
) {
    let SliceScratch {
        neigh,
        scan,
        walk,
        out,
        arcs,
    } = scratch;
    out.clear();
    out.resize(slice.len(), None);
    *arcs = 0;
    for (b, block) in slice.chunks(EVAL_BLOCK).enumerate() {
        let base = b * EVAL_BLOCK;
        walk.clear();
        walk.extend(
            block
                .iter()
                .enumerate()
                .map(|(i, &li)| (li, (base + i) as u32)),
        );
        // Local indices are unique within a round, so this key is total and
        // the sort order (hence the f64 accumulation inside each kernel
        // call) is deterministic despite `sort_unstable`.
        walk.sort_unstable_by_key(|&(li, _)| li);
        for &(li, pos) in walk.iter() {
            *arcs += st.adj_off[li as usize + 1] as u64 - st.adj_off[li as usize] as u64;
            out[pos as usize] = match cfg.kernel {
                MoveKernel::Stamped => {
                    best_local_move(st, li, cfg.min_gain, restrict_boundary, neigh)
                }
                MoveKernel::LegacyScan => {
                    best_local_move_scan(st, li, cfg.min_gain, restrict_boundary, scan)
                }
            };
        }
    }
}

/// Phase 1: the greedy sweep. Returns (owned moves, arcs scanned, delegate
/// proposals).
///
/// Two-phase, slice-parallel (DESIGN.md §6 note 16): the shuffled eligible
/// order is cut into `cfg.threads` contiguous arc-balanced slices, every
/// slice is *evaluated* against the frozen round-start state (pure reads,
/// one worker per slice), and then the candidates are *merged* — applied
/// or turned into proposals — sequentially in the one global shuffled
/// order, which is exactly the concatenation of the slices. The shuffle,
/// the eligibility gate, and the merge order are all independent of the
/// thread count, and each eligible vertex appears exactly once per round,
/// so MDL series, moves, and assignments are bit-identical for every
/// `threads` value (including 1, which skips the thread scope entirely).
///
/// Public (with the kernels) for the `perf_kernels` thread-sweep harness.
pub fn find_best_modules(
    st: &mut LocalState,
    cfg: &DistributedConfig,
    rng: &mut StdRng,
    bufs: &mut RoundBuffers,
    round: usize,
) -> (u64, u64, Vec<DelegateProposal>) {
    // Anti-bouncing (§3.4): on even rounds, boundary moves (targets
    // discovered through ghost arcs) are restricted toward smaller labels,
    // so of any symmetric swap pair (u -> M(v) while v -> M(u)) at most one
    // direction is admissible and the bouncing cycle is broken every other
    // round. Odd rounds are unrestricted so a vertex separated from its
    // community by a larger label can still rejoin it. Combined with the
    // hashed eligibility subset below, persistent oscillation cannot
    // survive two consecutive rounds.
    let restrict_boundary = cfg.min_label_tiebreak && round.is_multiple_of(2);
    let subset = cfg.move_fraction_denom.max(1) as u64;
    bufs.order.clear();
    bufs.order.extend_from_slice(&st.movable);
    bufs.order.shuffle(rng);

    // Eligibility prefilter, identical for every thread count. Partial
    // parallelism: only a hashed 1/k subset of the vertices is eligible
    // per round, which bounds how many simultaneous joiners a module can
    // receive on stale statistics (over-merging guard).
    bufs.eligible.clear();
    for idx in 0..bufs.order.len() {
        let li = bufs.order[idx];
        let v = st.verts[li as usize] as u64;
        if subset > 1
            && !(v.wrapping_mul(0x9e3779b97f4a7c15) >> 32)
                .wrapping_add(round as u64)
                .is_multiple_of(subset)
        {
            continue;
        }
        bufs.eligible.push(li);
    }

    // Arc-balanced contiguous cuts: slice s ends at the first prefix where
    // prefix_arcs·t ≥ (s+1)·total_arcs, so a hub-heavy head doesn't leave
    // the other workers idle. Cut *placement* varies with t; results don't,
    // because evaluation is pure and the merge replays the concatenation.
    let t = cfg.threads.max(1);
    let span = |li: u32| st.adj_off[li as usize + 1] as u64 - st.adj_off[li as usize] as u64;
    let total_arcs: u64 = bufs.eligible.iter().map(|&li| span(li)).sum();
    bufs.cuts.clear();
    bufs.cuts.push(0);
    if total_arcs > 0 {
        let mut prefix = 0u64;
        let mut s = 1u64;
        for (i, &li) in bufs.eligible.iter().enumerate() {
            prefix += span(li);
            while s < t as u64 && prefix * t as u64 >= s * total_arcs {
                bufs.cuts.push(i + 1);
                s += 1;
            }
        }
    }
    while bufs.cuts.len() < t + 1 {
        bufs.cuts.push(bufs.eligible.len());
    }
    while bufs.slices.len() < t {
        bufs.slices.push(SliceScratch::default());
    }

    // Evaluate every slice against the frozen round-start state.
    let eligible = &bufs.eligible;
    let cuts = &bufs.cuts;
    if t == 1 {
        eval_slice(st, cfg, restrict_boundary, eligible, &mut bufs.slices[0]);
    } else {
        let frozen: &LocalState = st;
        let (head, rest) = bufs.slices.split_first_mut().expect("slices sized above");
        std::thread::scope(|scope| {
            for (s, scratch) in rest.iter_mut().enumerate().take(t - 1) {
                let slice = &eligible[cuts[s + 1]..cuts[s + 2]];
                scope.spawn(move || eval_slice(frozen, cfg, restrict_boundary, slice, scratch));
            }
            eval_slice(
                frozen,
                cfg,
                restrict_boundary,
                &eligible[cuts[0]..cuts[1]],
                head,
            );
        });
    }

    // Merge in fixed slice order — the concatenation of the slices is the
    // global shuffled order, so this sequential fold of moves (and of the
    // arc counters) is the same commutative-safe, rank-order walk for
    // every t.
    let mut owned_moves = 0u64;
    let mut arcs_scanned = 0u64;
    let mut proposals: Vec<DelegateProposal> = Vec::new();
    for s in 0..t {
        arcs_scanned += bufs.slices[s].arcs;
        for (i, idx) in (bufs.cuts[s]..bufs.cuts[s + 1]).enumerate() {
            let li = bufs.eligible[idx];
            let Some(cand) = bufs.slices[s].out[i] else {
                continue;
            };
            if st.is_delegate(li) {
                // Read the target's statistics at merge time (sequential,
                // t-invariant), so proposals see earlier owned moves of
                // this round exactly as the single-threaded walk would.
                let target = st.module_entry(cand.to_slot);
                let to_module = st.module_ids[cand.to_slot as usize];
                proposals.push(DelegateProposal {
                    delegate: st.verts[li as usize],
                    to_module,
                    delta: cand.delta,
                    proposer: st.rank as u32,
                    target_info: ModuleInfoMsg {
                        mod_id: to_module,
                        flow: target.flow,
                        exit: target.exit,
                        members: target.members,
                        is_sent: false,
                    },
                });
            } else {
                apply_local_move(st, li, &cand);
                owned_moves += 1;
            }
        }
    }
    (owned_moves, arcs_scanned, proposals)
}

/// Elect per delegate: minimal δL; ties by smaller target module id
/// (minimum label), then by proposer rank, making the election
/// deterministic and identical everywhere. Within the ±1e-15 band the
/// retained winner depends on scan order, so both communication paths
/// feed `all` in the same (source rank, emission) order — the compact
/// owner sees exactly the legacy concatenation restricted to its own
/// delegates, which leaves every per-delegate subsequence intact.
fn elect(all: &[DelegateProposal], elected: &mut BTreeMap<u32, usize>) {
    elected.clear();
    for (i, p) in all.iter().enumerate() {
        let replace = match elected.get(&p.delegate) {
            None => true,
            Some(&j) => {
                let cur = &all[j];
                p.delta < cur.delta - 1e-15
                    || ((p.delta - cur.delta).abs() <= 1e-15
                        && (p.to_module, p.proposer) < (cur.to_module, cur.proposer))
            }
        };
        if replace {
            elected.insert(p.delegate, i);
        }
    }
}

/// Apply one elected winner to the local view. Winners mutate module
/// statistics, and a later winner's flow recompute reads assignments an
/// earlier one may have changed — so every rank must apply the winners in
/// the same (delegate-sorted) order, on both communication paths.
fn apply_winner(
    comm: &mut Comm,
    st: &mut LocalState,
    p: &DelegateProposal,
    delegate_assign: &mut BTreeMap<u32, u64>,
) {
    delegate_assign.insert(p.delegate, p.to_module);
    if let Some(&li) = st.index.get(&p.delegate) {
        if st.kind[li as usize] != VertexKind::DelegateCopy {
            return;
        }
        if st.module_id_of(li as usize) == p.to_module {
            return;
        }
        // Learn the target module from the proposal if unknown
        // (Algorithm 3 lines 23–24).
        let to_slot = st.insert_module_if_absent(
            p.to_module,
            ModuleEntry {
                flow: p.target_info.flow,
                exit: p.target_info.exit,
                members: p.target_info.members,
            },
        );
        // Recompute this copy's flows toward source/target and apply
        // the local share.
        let current = st.module_of[li as usize];
        let mut flow_to_current = 0.0;
        let mut flow_to_target = 0.0;
        for (tgt, w) in st.arcs_of(li) {
            if tgt == li {
                continue;
            }
            let m = st.module_of[tgt as usize];
            let f = w * st.inv_two_w;
            if m == current {
                flow_to_current += f;
            } else if m == to_slot {
                flow_to_target += f;
            }
        }
        // One logical relaxation per stored arc (the flow recompute
        // above) — the degree comes from the CSR offsets; re-walking
        // the adjacency just to count it was the old code's bug.
        comm.add_work(st.adj_off[li as usize + 1] as u64 - st.adj_off[li as usize] as u64);
        let cand = LocalCandidate {
            to_slot,
            delta: p.delta,
            flow_to_current,
            flow_to_target,
        };
        apply_local_move(st, li, &cand);
    }
}

/// Phase 2, legacy path: every proposal is allgathered to every rank and
/// each rank runs the full election locally. Simple, but the receive side
/// replicates the total proposal volume p times. Returns the number of
/// delegates moved (identical on every rank).
fn broadcast_delegates(
    comm: &mut Comm,
    st: &mut LocalState,
    proposals: Vec<DelegateProposal>,
    delegate_assign: &mut BTreeMap<u32, u64>,
    bufs: &mut RoundBuffers,
) -> u64 {
    let all = comm.allgatherv_packed(proposals, DelegateProposal::WIRE_BYTES);
    elect(&all, &mut bufs.elected);
    let mut moved = 0u64;
    bufs.winners.clear();
    bufs.winners.extend(bufs.elected.values().copied());
    bufs.winners.sort_by_key(|&i| all[i].delegate);
    for idx in 0..bufs.winners.len() {
        let p = all[bufs.winners[idx]];
        moved += 1;
        apply_winner(comm, st, &p, delegate_assign);
    }
    moved
}

/// Phase 2, compact path: owner-reduced election. Proposals travel once,
/// to the delegate's owner rank (`delegate mod p`) via an alltoallv; the
/// owner elects, and only the winners are gathered back — turning the
/// legacy O(total × p) receive volume into O(total + winners × p).
///
/// The exchange rides on [`Comm::alltoallv_reduce`], which folds a
/// 16-byte `(owned_moves, proposals)` partial per rank alongside the
/// buckets: summing gives every rank the global owned-move count (so the
/// round needs no standalone moves-allreduce) and the global proposal
/// count (so the winner gather is skipped entirely on proposal-free
/// rounds — the steady state of every quiescing stage). Empty buckets
/// ship zero bytes, like the legacy path's empty allgatherv parts.
///
/// Returns `(delegates moved, global owned moves)`, both identical on
/// every rank.
fn broadcast_delegates_compact(
    comm: &mut Comm,
    st: &mut LocalState,
    proposals: Vec<DelegateProposal>,
    owned_moves: u64,
    delegate_assign: &mut BTreeMap<u32, u64>,
    bufs: &mut RoundBuffers,
) -> (u64, u64) {
    let p = st.nranks;
    for bucket in bufs.prop_out.iter_mut() {
        bucket.clear();
    }
    // Emission order is preserved within each owner bucket (see `elect`).
    for pr in &proposals {
        bufs.prop_out[pr.delegate as usize % p].push(*pr);
    }
    let mut enc = 0u64;
    let outgoing: Vec<Vec<u8>> = bufs
        .prop_out
        .iter()
        .map(|bucket| {
            let mut buf = Vec::new();
            if !bucket.is_empty() {
                codec::encode_proposals(&mut buf, bucket);
                enc += buf.len() as u64;
            }
            buf
        })
        .collect();
    comm.add_codec_bytes(enc);
    let (incoming, (global_moves, global_props)) =
        comm.alltoallv_reduce(outgoing, (owned_moves, proposals.len() as u64), |parts| {
            parts
                .into_iter()
                .fold((0u64, 0u64), |acc, x| (acc.0 + x.0, acc.1 + x.1))
        });
    let mut mine: Vec<DelegateProposal> = Vec::new();
    let mut dec = 0u64;
    for buf in &incoming {
        if buf.is_empty() {
            continue;
        }
        dec += buf.len() as u64;
        let mut pos = 0;
        mine.extend(codec::decode_proposals(buf, &mut pos));
    }
    comm.add_codec_bytes(dec);
    if global_props == 0 {
        // No rank proposed anything: the election (and its second
        // collective) is over before it began. The piggybacked partials
        // already synchronized the round.
        return (0, global_moves);
    }
    // Owner-side election over this rank's delegates only.
    elect(&mine, &mut bufs.elected);
    bufs.winners.clear();
    bufs.winners.extend(bufs.elected.values().copied());
    bufs.winners.sort_by_key(|&i| mine[i].delegate);
    let my_winners: Vec<DelegateProposal> = bufs.winners.iter().map(|&i| mine[i]).collect();
    let mut wire = Vec::new();
    if !my_winners.is_empty() {
        codec::encode_proposals(&mut wire, &my_winners);
        comm.add_codec_bytes(wire.len() as u64);
    }
    let parts = comm.allgather_parts(wire);
    let mut winners: Vec<DelegateProposal> = Vec::new();
    let mut dec2 = 0u64;
    for part in parts.iter() {
        if part.is_empty() {
            continue; // owner with no winners shipped nothing
        }
        dec2 += part.len() as u64;
        let mut pos = 0;
        winners.extend(codec::decode_proposals(part, &mut pos));
    }
    comm.add_codec_bytes(dec2);
    // Delegates are globally unique across owners, so this is the total
    // order the legacy path applies in.
    winners.sort_by_key(|w| w.delegate);
    let mut moved = 0u64;
    for w in &winners {
        moved += 1;
        apply_winner(comm, st, w, delegate_assign);
    }
    (moved, global_moves)
}

/// Phase 3: swap boundary community IDs and `Module_Info` records with the
/// static neighbor ranks (Algorithm 3).
///
/// On the compact path, a destination's updates and infos fuse into one
/// delta/varint-encoded packet — halving the message count under full
/// swapping and shrinking each record below its packed extent. The
/// receiver processes the identical records in the identical per-provider
/// order either way.
fn swap_boundary_info(
    comm: &mut Comm,
    st: &mut LocalState,
    full_swap: bool,
    round: u64,
    bufs: &mut RoundBuffers,
    path: CommPath,
) {
    // Build per-destination updates into the persistent staging buckets.
    // `sent_to` marks modules already included for a destination this
    // round, so a module shared by several boundary vertices travels once
    // (`is_sent`, Algorithm 3 lines 4–8).
    for d in 0..st.nranks {
        bufs.updates[d].clear();
        bufs.infos[d].clear();
    }
    bufs.sent_to.clear();
    bufs.announce.clear();
    for (v, subs) in &st.subscribers {
        let li = st.index[v] as usize;
        let m = st.module_of[li];
        let gid = st.module_ids[m as usize];
        // Only changed assignments travel; subscribers' ghost views stay
        // exact because an update is emitted precisely on change.
        if st.last_announced[li] == gid {
            continue;
        }
        bufs.announce.push((li as u32, gid));
        for &dest in subs {
            bufs.updates[dest].push(VertexUpdate {
                vertex: *v,
                module: gid,
            });
            if full_swap {
                let entry = st.module_entry(m);
                let already = !bufs.sent_to.insert((dest, m));
                bufs.infos[dest].push(ModuleInfoMsg {
                    mod_id: gid,
                    flow: entry.flow,
                    exit: entry.exit,
                    members: entry.members,
                    is_sent: already,
                });
            }
        }
    }
    for &(li, gid) in &bufs.announce {
        st.last_announced[li as usize] = gid;
    }
    match path {
        CommPath::Legacy => {
            for &dest in &st.send_targets {
                comm.send_slice_packed(
                    dest,
                    TAG_VERTEX_UPDATES + round * 16,
                    &bufs.updates[dest],
                    VertexUpdate::WIRE_BYTES,
                );
                if full_swap {
                    comm.send_slice_packed(
                        dest,
                        TAG_MODULE_INFO + round * 16,
                        &bufs.infos[dest],
                        ModuleInfoMsg::WIRE_BYTES,
                    );
                }
            }
        }
        CommPath::Compact => {
            for &dest in &st.send_targets {
                let mut buf = Vec::new();
                // Quiet destinations get a zero-byte packet, like the
                // legacy path's empty record slices (infos are only
                // staged for updated vertices, so empty updates imply
                // empty infos).
                if !bufs.updates[dest].is_empty() {
                    codec::encode_updates(&mut buf, &bufs.updates[dest]);
                    if full_swap {
                        codec::encode_infos(&mut buf, &bufs.infos[dest]);
                    }
                    comm.add_codec_bytes(buf.len() as u64);
                }
                comm.send(dest, TAG_BOUNDARY_PACKET + round * 16, buf);
            }
        }
    }
    for i in 0..st.providers.len() {
        let src = st.providers[i];
        let (ups, infos) = match path {
            CommPath::Legacy => {
                let ups: Vec<VertexUpdate> = comm.recv(src, TAG_VERTEX_UPDATES + round * 16);
                let infos: Vec<ModuleInfoMsg> = if full_swap {
                    comm.recv(src, TAG_MODULE_INFO + round * 16)
                } else {
                    Vec::new()
                };
                (ups, infos)
            }
            CommPath::Compact => {
                let buf: Vec<u8> = comm.recv(src, TAG_BOUNDARY_PACKET + round * 16);
                if buf.is_empty() {
                    (Vec::new(), Vec::new())
                } else {
                    comm.add_codec_bytes(buf.len() as u64);
                    let mut pos = 0;
                    let ups = codec::decode_updates(&buf, &mut pos);
                    let infos = if full_swap {
                        codec::decode_infos(&buf, &mut pos)
                    } else {
                        Vec::new()
                    };
                    (ups, infos)
                }
            }
        };
        for u in ups {
            if let Some(&li) = st.index.get(&u.vertex) {
                let s = st.intern_module(u.module);
                st.module_of[li as usize] = s;
            }
            comm.add_work(1);
        }
        for m in infos {
            if m.is_sent {
                continue; // duplicate within this swap — skip
            }
            // Unknown modules are built from the received info; known
            // ones keep the local view (the owner reduction will
            // reconcile exactly at the end of the round).
            st.insert_module_if_absent(
                m.mod_id,
                ModuleEntry {
                    flow: m.flow,
                    exit: m.exit,
                    members: m.members,
                },
            );
            comm.add_work(1);
        }
    }
}

/// Contribution-change test of the delta reduction.
#[inline]
fn contrib_changed(old: &(f64, f64, u32), new: &(f64, f64, u32)) -> bool {
    (old.0 - new.0).abs() > 1e-15 || (old.1 - new.1).abs() > 1e-15 || old.2 != new.2
}

/// Phase 4 ("Other"): delta-based owner reduction of module statistics,
/// exact global MDL, and change-driven redistribution.
///
/// Every rank recomputes its exact local contribution to each module it
/// touches (vertex flows and member counts of its owned vertices and
/// delegate shares; exit flows of its arcs — each arc lives on exactly one
/// rank), but only contributions that **changed** since the previous sync
/// travel to the module owners (`modID mod p`). Owners maintain running
/// totals plus per-source records and send refreshed `Module_Info` only
/// for modules whose totals changed, and only to their current
/// subscribers. The totals are therefore exact every round, while the
/// traffic and the owner work shrink with the move rate instead of
/// costing O(p) per popular module per round.
pub fn sync_modules(
    comm: &mut Comm,
    st: &mut LocalState,
    node_term: f64,
    full_swap: bool,
    bufs: &mut RoundBuffers,
) -> (f64, u64) {
    sync_modules_path(comm, st, node_term, full_swap, bufs, CommPath::Legacy)
}

/// [`sync_modules`] with an explicit communication path.
///
/// Both paths run the identical reduction; they differ in wire format and
/// collective count. Legacy ships contributions and refreshed infos as
/// packed records and allreduces the MDL partials separately. Compact
/// delta/varint-encodes both exchanges and fuses the partials into the
/// publish collective via [`Comm::alltoallv_reduce`], whose rank-order
/// fold matches `allreduce_with` — so the MDL bits are identical while
/// one collective per sync disappears. (Without full swapping there is no
/// publish exchange to ride on, so the compact path falls back to the
/// allreduce.)
pub fn sync_modules_path(
    comm: &mut Comm,
    st: &mut LocalState,
    node_term: f64,
    full_swap: bool,
    bufs: &mut RoundBuffers,
    path: CommPath,
) -> (f64, u64) {
    let p = st.nranks;
    // ---- 1. Fresh local contributions (exact, O(local arcs)), into the
    //         stamped slot accumulator — no hashing per vertex or arc. ----
    let nslots = st.num_module_slots();
    bufs.contrib.begin(nslots);
    for li in 0..st.verts.len() {
        let m = st.module_of[li];
        match st.kind[li] {
            VertexKind::Owned => {
                let f = st.node_flow[li];
                bufs.contrib.update(m, |e| {
                    e.0 += f;
                    e.2 += 1;
                });
            }
            VertexKind::DelegateCopy => {
                let f = st.node_flow[li];
                // The member is counted once, by the delegate's 1D owner.
                let counted = (st.verts[li] as usize) % p == st.rank;
                bufs.contrib.update(m, |e| {
                    e.0 += f;
                    if counted {
                        e.2 += 1;
                    }
                });
            }
            // Ghost views still subscribe (zero contribution).
            VertexKind::Ghost => bufs.contrib.update(m, |_| {}),
        }
    }
    let mut arcs_scanned = 0u64;
    for li in 0..st.verts.len() as u32 {
        if st.kind[li as usize] == VertexKind::Ghost {
            continue;
        }
        let m_src = st.module_of[li as usize];
        let inv_two_w = st.inv_two_w;
        for (tgt, w) in st.arcs_of(li) {
            arcs_scanned += 1;
            if tgt == li {
                continue;
            }
            let m_dst = st.module_of[tgt as usize];
            if m_src != m_dst {
                bufs.contrib.update(m_src, |e| e.1 += w * inv_two_w);
                // Subscribe to the neighbor module too (zero contribution).
                bufs.contrib.update(m_dst, |_| {});
            }
        }
    }
    comm.add_work(arcs_scanned);

    // ---- 2. Diff against what was last shipped; ship changes only. ----
    for bucket in bufs.contrib_out.iter_mut() {
        bucket.clear();
    }
    for &s in bufs.contrib.touched() {
        let c = bufs.contrib.get(s);
        let dirty = if st.last_contrib_active[s as usize] {
            contrib_changed(&st.last_contrib[s as usize], &c)
        } else {
            true // new contribution
        };
        if dirty {
            let gid = st.module_ids[s as usize];
            bufs.contrib_out[(gid % p as u64) as usize].push(ModuleContribution {
                mod_id: gid,
                flow: c.0,
                exit: c.1,
                members: c.2,
                retract: false,
            });
        }
    }
    // Modules this rank no longer touches: retract with a zero record.
    for s in 0..nslots as u32 {
        if st.last_contrib_active[s as usize] && !bufs.contrib.is_touched(s) {
            let gid = st.module_ids[s as usize];
            bufs.contrib_out[(gid % p as u64) as usize].push(ModuleContribution {
                mod_id: gid,
                flow: 0.0,
                exit: 0.0,
                members: 0,
                retract: true,
            });
            st.remove_module(gid);
            st.last_contrib_active[s as usize] = false;
            st.last_contrib[s as usize] = (0.0, 0.0, 0);
        }
    }
    for &s in bufs.contrib.touched() {
        st.last_contrib[s as usize] = bufs.contrib.get(s);
        st.last_contrib_active[s as usize] = true;
    }
    for bucket in bufs.contrib_out.iter_mut() {
        bucket.sort_by_key(|c| c.mod_id);
    }
    // The fabric takes ownership of the wire payload (as MPI buffering
    // would); the staging buckets keep their capacity for the next round.
    let incoming: Vec<Vec<ModuleContribution>> = match path {
        CommPath::Legacy => {
            let outgoing: Vec<Vec<ModuleContribution>> = bufs
                .contrib_out
                .iter()
                .map(|b| b.as_slice().to_vec())
                .collect();
            comm.alltoallv_packed(outgoing, ModuleContribution::WIRE_BYTES)
        }
        CommPath::Compact => {
            let mut enc = 0u64;
            let outgoing: Vec<Vec<u8>> = bufs
                .contrib_out
                .iter()
                .map(|b| {
                    let mut buf = Vec::new();
                    if !b.is_empty() {
                        codec::encode_contribs(&mut buf, b);
                        enc += buf.len() as u64;
                    }
                    buf
                })
                .collect();
            comm.add_codec_bytes(enc);
            let packets = comm.alltoallv(outgoing);
            let mut dec = 0u64;
            let decoded = packets
                .iter()
                .map(|buf| {
                    if buf.is_empty() {
                        return Vec::new();
                    }
                    dec += buf.len() as u64;
                    let mut pos = 0;
                    codec::decode_contribs(buf, &mut pos)
                })
                .collect();
            comm.add_codec_bytes(dec);
            decoded
        }
    };

    // ---- 3. Owner: apply deltas to running totals. ----
    // (module, src) pairs whose stats must be (re)published.
    bufs.changed_modules.clear();
    bufs.forced.clear();
    for (src, msgs) in incoming.iter().enumerate() {
        for c in msgs {
            comm.add_work(1);
            let key = (c.mod_id, src as u32);
            let old = st.owner_sources.get(&key).copied().unwrap_or((0.0, 0.0, 0));
            let entry = st.owned_modules.entry(c.mod_id).or_default();
            entry.flow += c.flow - old.0;
            entry.exit += c.exit - old.1;
            entry.members = (entry.members + c.members) - old.2;
            let retraction = c.retract;
            let subs = st.owner_subs.entry(c.mod_id).or_default();
            if retraction {
                st.owner_sources.remove(&key);
                if let Ok(pos) = subs.binary_search(&src) {
                    subs.remove(pos);
                }
            } else {
                st.owner_sources.insert(key, (c.flow, c.exit, c.members));
                if let Err(pos) = subs.binary_search(&src) {
                    subs.insert(pos, src);
                    bufs.forced.push((c.mod_id, src));
                }
            }
            if contrib_changed(&old, &(c.flow, c.exit, c.members)) {
                bufs.changed_modules.push(c.mod_id);
            }
        }
    }
    bufs.changed_modules.sort_unstable();
    bufs.changed_modules.dedup();
    // Drop empty modules.
    for m in &bufs.changed_modules {
        let dead = st
            .owned_modules
            .get(m)
            .map(|t| t.members == 0 && t.flow <= 1e-15)
            .unwrap_or(false);
        if dead {
            st.owned_modules.remove(m);
        }
    }

    // ---- 4. Local MDL partials from the owners' totals. ----
    let (q, s1, s2, k) = {
        let mut q = 0.0;
        let mut s1 = 0.0;
        let mut s2 = 0.0;
        let mut k = 0u64;
        // Sorted iteration keeps the floating-point sums deterministic;
        // the id vec is reused across syncs.
        bufs.sorted_ids.clear();
        bufs.sorted_ids.extend(st.owned_modules.keys().copied());
        bufs.sorted_ids.sort_unstable();
        for &m in &bufs.sorted_ids {
            let t = &st.owned_modules[&m];
            let exit = t.exit.max(0.0);
            q += exit;
            s1 += plogp(exit);
            s2 += plogp(exit + t.flow.max(0.0));
            k += 1;
        }
        comm.add_work(st.owned_modules.len() as u64);
        (q, s1, s2, k)
    };

    // ---- 5. Global reduction of the partials, and (under full swapping)
    //         publish refreshed stats for changed modules (plus current
    //         stats to brand-new subscribers). ----
    let (sum_exit, s_plogp_exit, s_plogp_both, nmod);
    if full_swap {
        for bucket in bufs.info_out.iter_mut() {
            bucket.clear();
        }
        bufs.queue.clear();
        for &m in &bufs.changed_modules {
            if let Some(subs) = st.owner_subs.get(&m) {
                for &r in subs {
                    bufs.queue.push((m, r));
                }
            }
        }
        bufs.queue.extend(bufs.forced.iter().copied());
        bufs.queue.sort_unstable();
        bufs.queue.dedup();
        for &(m, r) in &bufs.queue {
            let t = st.owned_modules.get(&m).copied().unwrap_or_default();
            bufs.info_out[r].push(ModuleInfoMsg {
                mod_id: m,
                flow: t.flow,
                exit: t.exit,
                members: t.members,
                is_sent: false,
            });
            comm.add_work(1);
        }
        match path {
            CommPath::Legacy => {
                let red = comm.allreduce_with((q, s1, s2, k), |parts| {
                    parts.into_iter().fold((0.0, 0.0, 0.0, 0u64), |acc, x| {
                        (acc.0 + x.0, acc.1 + x.1, acc.2 + x.2, acc.3 + x.3)
                    })
                });
                (sum_exit, s_plogp_exit, s_plogp_both, nmod) = *red;
                let responses: Vec<Vec<ModuleInfoMsg>> = bufs
                    .info_out
                    .iter()
                    .map(|b| b.as_slice().to_vec())
                    .collect();
                let received = comm.alltoallv_packed(responses, ModuleInfoMsg::WIRE_BYTES);
                for msgs in received {
                    for m in msgs {
                        apply_published_info(comm, st, &m);
                    }
                }
            }
            CommPath::Compact => {
                // The publish exchange and the MDL allreduce fuse into one
                // `alltoallv_reduce`: the 32-byte (q, s1, s2, k) partial
                // rides the collective — folded in source-rank order, the
                // exact order `allreduce_with` folds in, so the sums are
                // bit-identical — and one collective per sync disappears.
                // Destinations with nothing to publish get zero bytes.
                let mut enc = 0u64;
                let outgoing: Vec<Vec<u8>> = bufs
                    .info_out
                    .iter()
                    .map(|b| {
                        let mut buf = Vec::new();
                        if !b.is_empty() {
                            codec::encode_infos(&mut buf, b);
                            enc += buf.len() as u64;
                        }
                        buf
                    })
                    .collect();
                comm.add_codec_bytes(enc);
                let (packets, red) = comm.alltoallv_reduce(outgoing, (q, s1, s2, k), |parts| {
                    parts.into_iter().fold((0.0, 0.0, 0.0, 0u64), |acc, x| {
                        (acc.0 + x.0, acc.1 + x.1, acc.2 + x.2, acc.3 + x.3)
                    })
                });
                // Apply each source's infos in ascending source order — the
                // legacy apply order.
                let mut dec = 0u64;
                for buf in &packets {
                    if buf.is_empty() {
                        continue;
                    }
                    dec += buf.len() as u64;
                    let mut pos = 0;
                    for m in codec::decode_infos(buf, &mut pos) {
                        apply_published_info(comm, st, &m);
                    }
                }
                comm.add_codec_bytes(dec);
                (sum_exit, s_plogp_exit, s_plogp_both, nmod) = red;
            }
        }
    } else {
        // Naive-swap ablation: no stat redistribution to ride on — both
        // paths reduce the partials with the standalone collective, and
        // local views drift until the next full swap.
        let red = comm.allreduce_with((q, s1, s2, k), |parts| {
            parts.into_iter().fold((0.0, 0.0, 0.0, 0u64), |acc, x| {
                (acc.0 + x.0, acc.1 + x.1, acc.2 + x.2, acc.3 + x.3)
            })
        });
        (sum_exit, s_plogp_exit, s_plogp_both, nmod) = *red;
    }
    st.sum_exit = sum_exit;
    let mdl = plogp(sum_exit) - 2.0 * s_plogp_exit - node_term + s_plogp_both;

    (mdl, nmod)
}

/// Receiver side of the publish exchange: one refreshed `Module_Info`
/// record updates (or retires) the local view of a module.
fn apply_published_info(comm: &mut Comm, st: &mut LocalState, m: &ModuleInfoMsg) {
    if m.members == 0 && m.flow <= 1e-15 {
        st.remove_module(m.mod_id);
    } else {
        st.set_module(
            m.mod_id,
            ModuleEntry {
                flow: m.flow,
                exit: m.exit,
                members: m.members,
            },
        );
    }
    comm.add_work(1);
}

/// Resumable position inside a clustering stage: everything
/// [`cluster_stage_recoverable`] needs (besides the [`LocalState`] itself)
/// to continue from a round boundary exactly as if it had never stopped —
/// including the rank's RNG, so the replayed sweep orders are
/// bit-identical to the uninterrupted run. ([`RoundBuffers`] deliberately
/// holds no cross-round state beyond capacity, so it is rebuilt on
/// resume.)
#[derive(Clone, Debug)]
pub struct StageCursor {
    /// The next round to execute.
    pub next_round: usize,
    /// MDL and module count as of the last sync.
    pub mdl: f64,
    pub nmod: u64,
    pub mdl_series: Vec<f64>,
    pub total_moves: u64,
    pub inner: usize,
    pub quiet_rounds: usize,
    pub stalled_syncs: usize,
    /// The rank's sweep-order RNG, captured mid-stream.
    pub rng: StdRng,
}

/// Run one clustering stage to convergence (Algorithm 2 lines 2–7 with
/// delegates, lines 10–14 without — the state's delegate set decides).
pub fn cluster_stage(
    comm: &mut Comm,
    st: &mut LocalState,
    cfg: &DistributedConfig,
    node_term: f64,
    delegate_assign: &mut BTreeMap<u32, u64>,
    stage_prefix: &str,
) -> StageOutcome {
    cluster_stage_recoverable(
        comm,
        st,
        cfg,
        node_term,
        delegate_assign,
        stage_prefix,
        None,
        0,
        &mut |_, _, _, _| {},
    )
}

/// A checkpoint hook: called at a committed round boundary with the
/// communicator (inside the "Checkpoint" phase, after the consensus
/// collective), the clustering state, the delegate assignment and the
/// cursor to resume from.
pub type CheckpointHook<'a> =
    &'a mut dyn FnMut(&mut Comm, &LocalState, &BTreeMap<u32, u64>, &StageCursor);

/// [`cluster_stage`] with round-boundary checkpointing and resume.
///
/// With `resume = Some(cursor)` the stage skips the Init sync (the restored
/// state already carries exact module statistics) and continues at
/// `cursor.next_round` with the captured RNG. With `checkpoint_every > 0`,
/// after every `checkpoint_every`-th completed round that did not end the
/// stage, all ranks pass a consensus collective and then invoke
/// `on_checkpoint` with no communication event in between — so either every
/// rank commits the boundary or (if a crash fires at or before the
/// collective) none does, keeping the checkpoint store globally consistent.
#[allow(clippy::too_many_arguments)]
pub fn cluster_stage_recoverable(
    comm: &mut Comm,
    st: &mut LocalState,
    cfg: &DistributedConfig,
    node_term: f64,
    delegate_assign: &mut BTreeMap<u32, u64>,
    stage_prefix: &str,
    resume: Option<StageCursor>,
    checkpoint_every: usize,
    on_checkpoint: CheckpointHook<'_>,
) -> StageOutcome {
    let ph = |name: &str| format!("{stage_prefix}{name}");
    // Stage-static and identical on every rank (and across restores): the
    // driver seeds `delegate_assign` from the replicated delegate set for
    // stage 1 and passes an empty map for stage 2, so a delegate-free
    // stage can skip the election exchange outright — zero bytes and zero
    // collectives in BroadcastDelegates, like the legacy path's empty
    // allgatherv — and count moves with the plain allreduce instead.
    let has_delegates = !delegate_assign.is_empty();
    let mut bufs = RoundBuffers::new(st.nranks);
    let mut rng;
    let mut mdl_series;
    let mut total_moves;
    let mut inner;
    let mut quiet_rounds;
    let mut stalled_syncs;
    let mut mdl;
    let mut nmod;
    let start_round;
    match resume {
        Some(cur) => {
            rng = cur.rng;
            mdl_series = cur.mdl_series;
            total_moves = cur.total_moves;
            inner = cur.inner;
            quiet_rounds = cur.quiet_rounds;
            stalled_syncs = cur.stalled_syncs;
            mdl = cur.mdl;
            nmod = cur.nmod;
            start_round = cur.next_round;
        }
        None => {
            rng =
                StdRng::seed_from_u64(cfg.seed ^ (st.rank as u64).wrapping_mul(0x9e3779b97f4a7c15));
            mdl_series = Vec::new();
            total_moves = 0;
            inner = 0;
            quiet_rounds = 0;
            stalled_syncs = 0;
            // Round 0: establish exact module statistics and the initial
            // MDL. This ships every singleton module's record once — the
            // table setup a real implementation does during preprocessing —
            // so it is metered as "Init", not amortized into the
            // per-iteration "Other" phase that Figure 8 breaks down.
            let (mdl0, nmod0) = comm.phase(&ph("Init"), |c| {
                sync_modules_path(
                    c,
                    st,
                    node_term,
                    cfg.full_module_swap,
                    &mut bufs,
                    cfg.comm_path,
                )
            });
            mdl = mdl0;
            nmod = nmod0;
            mdl_series.push(mdl);
            start_round = 0;
        }
    }
    let sync_interval = cfg.sync_interval.max(1);
    let cycle = cfg.move_fraction_denom.max(1) as usize;

    for round in start_round..cfg.max_inner_iterations {
        inner += 1;
        let (owned_moves, proposals) = comm.phase(&ph("FindBestModule"), |c| {
            let (moves, arcs_scanned, proposals) =
                find_best_modules(st, cfg, &mut rng, &mut bufs, round);
            c.add_work(arcs_scanned);
            (moves, proposals)
        });

        let (delegate_moves, global_owned) = comm.phase(&ph("BroadcastDelegates"), |c| {
            match cfg.comm_path {
                CommPath::Legacy => (
                    broadcast_delegates(c, st, proposals, delegate_assign, &mut bufs),
                    0,
                ),
                CommPath::Compact if has_delegates => broadcast_delegates_compact(
                    c,
                    st,
                    proposals,
                    owned_moves,
                    delegate_assign,
                    &mut bufs,
                ),
                // No delegates anywhere: nothing to elect, nothing to send.
                CommPath::Compact => (0, 0),
            }
        });

        comm.phase(&ph("SwapBoundaryInfo"), |c| {
            swap_boundary_info(
                c,
                st,
                cfg.full_module_swap,
                round as u64 + 1,
                &mut bufs,
                cfg.comm_path,
            )
        });

        let round_moves = comm.phase(&ph("Other"), |c| match cfg.comm_path {
            // Legacy: a standalone allreduce establishes the global move
            // count. Compact with delegates: the count already arrived on
            // the election collective — no extra traffic here. Compact
            // without delegates: there was no election collective to ride,
            // so the same allreduce the legacy path uses runs instead.
            CommPath::Legacy => c.allreduce_u64(owned_moves, ReduceOp::Sum) + delegate_moves,
            CommPath::Compact if has_delegates => global_owned + delegate_moves,
            CommPath::Compact => c.allreduce_u64(owned_moves, ReduceOp::Sum),
        });
        total_moves += round_moves;

        // With partial parallelism a single quiet round can simply mean
        // the eligible subset had nothing to do; only a full mask cycle of
        // quiet rounds means the stage converged.
        if round_moves == 0 {
            quiet_rounds += 1;
        } else {
            quiet_rounds = 0;
        }
        let quiesced = quiet_rounds >= cycle;

        // Exact owner reduction (and exact global MDL) every
        // `sync_interval` rounds and at convergence; between syncs, module
        // information travels by the gossip of Algorithm 3 only, keeping
        // the per-round "Other" cost local, as in the paper.
        let due = (round + 1) % sync_interval == 0;
        if due || quiesced || round + 1 == cfg.max_inner_iterations {
            let (new_mdl, new_nmod) = comm.phase(&ph("Other"), |c| {
                sync_modules_path(
                    c,
                    st,
                    node_term,
                    cfg.full_module_swap,
                    &mut bufs,
                    cfg.comm_path,
                )
            });
            mdl_series.push(new_mdl);
            let improved = mdl - new_mdl;
            mdl = new_mdl;
            nmod = new_nmod;
            if improved < cfg.theta {
                stalled_syncs += 1;
            } else {
                stalled_syncs = 0;
            }
            // Anti-bouncing safety valve: two consecutive syncs without
            // MDL improvement end the stage (the merge consolidates).
            if quiesced || stalled_syncs >= 2 {
                break;
            }
        }

        // Round-boundary checkpoint: only at boundaries the stage will
        // continue past, so a restored run replays the identical remainder.
        if checkpoint_every > 0
            && (round + 1) % checkpoint_every == 0
            && round + 1 < cfg.max_inner_iterations
        {
            let cursor = StageCursor {
                next_round: round + 1,
                mdl,
                nmod,
                mdl_series: mdl_series.clone(),
                total_moves,
                inner,
                quiet_rounds,
                stalled_syncs,
                rng: rng.clone(),
            };
            comm.phase(&ph("Checkpoint"), |c| {
                // Consensus collective: every rank reaches the boundary
                // before anyone commits. A crash firing at or before this
                // collective poisons the world with *no* rank committed;
                // past it, every rank commits before its next communication
                // event (its next crash opportunity). All-or-nothing.
                c.allreduce_u64(round as u64, ReduceOp::Min);
                on_checkpoint(c, st, delegate_assign, &cursor);
            });
        }
    }

    StageOutcome {
        inner_iterations: inner,
        total_moves,
        mdl,
        mdl_series,
        num_modules: nmod,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::build_stage1_states;
    use infomap_graph::generators;
    use infomap_mpisim::World;
    use infomap_partition::{DelegateThreshold, Partition};

    fn run_sync_rounds(p: usize, rounds: usize, full_swap: bool) -> Vec<(f64, u64)> {
        let (g, _) = generators::lfr_like(
            generators::LfrParams {
                n: 200,
                mu: 0.25,
                ..Default::default()
            },
            3,
        );
        let partition = Partition::delegate(&g, p, DelegateThreshold::Auto(4.0), true);
        let states = build_stage1_states(&g, &partition);
        let slots: Vec<std::sync::Mutex<Option<crate::state::LocalState>>> = states
            .into_iter()
            .map(|s| std::sync::Mutex::new(Some(s)))
            .collect();
        let inv_two_w = 1.0 / (2.0 * g.total_weight());
        let node_term: f64 = (0..g.num_vertices() as u32)
            .map(|v| plogp(g.strength(v) * inv_two_w))
            .sum();
        let cfg = DistributedConfig {
            nranks: p,
            full_module_swap: full_swap,
            ..Default::default()
        };
        let report = World::new(p).run(|comm| {
            let mut st = slots[comm.rank()].lock().unwrap().take().unwrap();
            let mut bufs = RoundBuffers::new(p);
            let mut out = Vec::new();
            for _ in 0..rounds {
                out.push(sync_modules(
                    comm,
                    &mut st,
                    node_term,
                    cfg.full_module_swap,
                    &mut bufs,
                ));
            }
            out
        });
        report.results[0].clone()
    }

    #[test]
    fn repeated_syncs_without_moves_are_stable() {
        // With no moves between syncs, the delta reduction must ship
        // nothing new and report the identical MDL and module count.
        let series = run_sync_rounds(3, 4, true);
        let (mdl0, n0) = series[0];
        for &(mdl, n) in &series[1..] {
            assert_eq!(n, n0);
            assert!((mdl - mdl0).abs() < 1e-12, "MDL drifted: {mdl0} -> {mdl}");
        }
    }

    #[test]
    fn initial_sync_counts_every_vertex_as_a_singleton() {
        let series = run_sync_rounds(4, 1, true);
        // 200 vertices -> 200 singleton modules at the first sync.
        assert_eq!(series[0].1, 200);
    }

    #[test]
    fn naive_swap_mode_still_reports_exact_mdl() {
        // full_module_swap=false skips redistribution but the owner-side
        // MDL must match the full-swap value for the same assignments.
        let a = run_sync_rounds(3, 1, true);
        let b = run_sync_rounds(3, 1, false);
        assert!((a[0].0 - b[0].0).abs() < 1e-12);
        assert_eq!(a[0].1, b[0].1);
    }

    #[test]
    fn delta_codelength_is_zero_for_identity_move() {
        let from = ModuleEntry {
            flow: 0.2,
            exit: 0.1,
            members: 3,
        };
        let to = ModuleEntry {
            flow: 0.2,
            exit: 0.1,
            members: 3,
        };
        // Moving a vertex with zero flow and zero links changes nothing.
        let d = delta_codelength(0.4, &from, &to, 0.0, 0.0, 0.0, 0.0);
        assert!(d.abs() < 1e-12);
    }

    #[test]
    fn delta_codelength_favors_joining_a_connected_module() {
        // Vertex with flow 0.1, all of its 0.1 out-flow pointing into the
        // target module: joining removes boundary flow on both sides.
        let from = ModuleEntry {
            flow: 0.1,
            exit: 0.1,
            members: 1,
        };
        let to = ModuleEntry {
            flow: 0.3,
            exit: 0.15,
            members: 3,
        };
        let join = delta_codelength(0.5, &from, &to, 0.1, 0.1, 0.0, 0.1);
        // The same vertex moving to an unconnected module of equal size.
        let elsewhere = ModuleEntry {
            flow: 0.3,
            exit: 0.15,
            members: 3,
        };
        let stray = delta_codelength(0.5, &from, &elsewhere, 0.1, 0.1, 0.0, 0.0);
        assert!(join < stray, "join {join} should beat stray {stray}");
        assert!(join < 0.0, "joining a connected module should gain: {join}");
    }

    #[test]
    fn stamped_kernel_matches_legacy_scan_bitwise() {
        // Both kernels must agree to the bit on real stage-1 states —
        // same target slot, same δL bits, same flow bits — including under
        // the minimum-label restriction.
        let degs = generators::power_law_degrees(300, 2.1, 2, 80, 5);
        let g = generators::chung_lu(&degs, 6);
        let partition = Partition::delegate(&g, 4, DelegateThreshold::Auto(4.0), true);
        let states = build_stage1_states(&g, &partition);
        let mut checked = 0usize;
        for st in &states {
            let mut st = st.clone();
            st.sum_exit = st.out_flow.iter().sum();
            let mut neigh = NeighborhoodScratch::new();
            let mut scan: Vec<(u32, f64, bool)> = Vec::new();
            for restrict in [false, true] {
                for &li in &st.movable.clone() {
                    let a = best_local_move(&st, li, 1e-10, restrict, &mut neigh);
                    let b = best_local_move_scan(&st, li, 1e-10, restrict, &mut scan);
                    match (a, b) {
                        (None, None) => {}
                        (Some(x), Some(y)) => {
                            assert_eq!(x.to_slot, y.to_slot, "vertex {li}");
                            assert_eq!(x.delta.to_bits(), y.delta.to_bits(), "vertex {li}");
                            assert_eq!(
                                x.flow_to_target.to_bits(),
                                y.flow_to_target.to_bits(),
                                "vertex {li}"
                            );
                            assert_eq!(
                                x.flow_to_current.to_bits(),
                                y.flow_to_current.to_bits(),
                                "vertex {li}"
                            );
                            checked += 1;
                        }
                        (x, y) => panic!("vertex {li}: stamped {x:?} vs scan {y:?}"),
                    }
                }
                // Apply a few scan-kernel moves so the second pass sees
                // non-singleton statistics.
                for &li in &st.movable.clone() {
                    if let Some(c) = best_local_move_scan(&st, li, 1e-10, restrict, &mut scan) {
                        apply_local_move(&mut st, li, &c);
                    }
                }
            }
        }
        assert!(checked > 0, "no candidate moves compared");
    }
}
