//! Wire formats exchanged between ranks.
//!
//! All messages are plain-old-data structs moved in `Vec`s. An MPI
//! derived datatype transmits the *packed* extent of the fields — not the
//! Rust in-memory layout, which pads e.g. `ModuleInfoMsg` from 29 packed
//! bytes to 32 and `DelegateProposal` from 53 to 64. Each struct
//! therefore declares a `WIRE_BYTES` constant, and both communication
//! paths meter records at that packed size (the compact path additionally
//! delta/varint-encodes them below the packed size; see
//! [`crate::codec`]). Metering `size_of` would overstate legacy traffic
//! by the padding and make the compact path's savings look better than
//! they are.

/// The paper's List 1 message interface: the full information of one
/// module, plus the duplicate-suppression flag of Algorithm 3.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ModuleInfoMsg {
    /// Module ID (`modID`).
    pub mod_id: u64,
    /// Sum of visit probability of the module (`sumPr`).
    pub flow: f64,
    /// Sum of exit probability of the module (`exitPr`).
    pub exit: f64,
    /// Vertex number in this module (`numMembers`).
    pub members: u32,
    /// Whether this local module has been sent before (`isSent`): the
    /// receiver skips records marked sent, so a module whose info travels
    /// alongside several boundary vertices is only incorporated once.
    pub is_sent: bool,
}

impl ModuleInfoMsg {
    /// Packed extent: u64 + f64 + f64 + u32 + u8 (Rust pads to 32).
    pub const WIRE_BYTES: u64 = 8 + 8 + 8 + 4 + 1;
}

/// Boundary community-ID update: vertex → current module.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VertexUpdate {
    pub vertex: u32,
    pub module: u64,
}

impl VertexUpdate {
    /// Packed extent: u32 + u64 (Rust pads to 16).
    pub const WIRE_BYTES: u64 = 4 + 8;
}

/// A rank's best-local-δL proposal for one delegate (paper Algorithm 2
/// line 4). Carries the target module's info (List 1) so ranks that have
/// never seen the target module can build it (Algorithm 3 lines 23–24).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DelegateProposal {
    pub delegate: u32,
    pub to_module: u64,
    pub delta: f64,
    pub proposer: u32,
    pub target_info: ModuleInfoMsg,
}

impl DelegateProposal {
    /// Packed extent: u32 + u64 + f64 + u32 + packed info (Rust pads
    /// to 64).
    pub const WIRE_BYTES: u64 = 4 + 8 + 8 + 4 + ModuleInfoMsg::WIRE_BYTES;
}

/// A rank's local contribution to (or subscription of) a module's
/// statistics, reduced at the module's owner rank. A record with zero
/// contributions and `retract == false` is a pure subscription; a record
/// with `retract == true` withdraws the sender's contribution and
/// subscription (the rank no longer touches the module).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ModuleContribution {
    pub mod_id: u64,
    pub flow: f64,
    pub exit: f64,
    pub members: u32,
    pub retract: bool,
}

impl ModuleContribution {
    /// Packed extent: u64 + f64 + f64 + u32 + u8 (Rust pads to 32).
    pub const WIRE_BYTES: u64 = 8 + 8 + 8 + 4 + 1;
}

/// One aggregated inter-module arc of the merged graph, routed to the
/// new owner of `src` (paper §3.5).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MergedArc {
    pub src: u32,
    pub dst: u32,
    pub weight: f64,
}

/// Flow (visit rate) of one merged vertex, routed to its new owner.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MergedFlow {
    pub vertex: u32,
    pub flow: f64,
}

/// Lookup request/response used when composing original-vertex assignments
/// across merge levels.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AssignmentQuery {
    pub key: u32,
}

/// Response to an [`AssignmentQuery`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AssignmentReply {
    pub key: u32,
    pub module: u32,
}

/// Field-wise [`WirePayload`] impls so the message structs can cross a
/// byte-level transport backend. The encoding is the packed field
/// sequence in declaration order — the same extent `WIRE_BYTES` meters
/// (bools travel as one byte).
macro_rules! wire_payload_fields {
    ($t:ty { $($field:ident),+ $(,)? }) => {
        impl infomap_mpisim::WirePayload for $t {
            fn encode_into(&self, out: &mut Vec<u8>) {
                $(infomap_mpisim::WirePayload::encode_into(&self.$field, out);)+
            }

            fn decode_from(
                buf: &mut &[u8],
            ) -> Result<Self, infomap_mpisim::WireDecodeError> {
                $(let $field = infomap_mpisim::WirePayload::decode_from(buf)?;)+
                Ok(Self { $($field),+ })
            }
        }
    };
}

wire_payload_fields!(ModuleInfoMsg {
    mod_id,
    flow,
    exit,
    members,
    is_sent
});
wire_payload_fields!(VertexUpdate { vertex, module });
wire_payload_fields!(DelegateProposal {
    delegate,
    to_module,
    delta,
    proposer,
    target_info
});
wire_payload_fields!(ModuleContribution {
    mod_id,
    flow,
    exit,
    members,
    retract
});
wire_payload_fields!(MergedArc { src, dst, weight });
wire_payload_fields!(MergedFlow { vertex, flow });
wire_payload_fields!(AssignmentQuery { key });
wire_payload_fields!(AssignmentReply { key, module });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_info_is_compact() {
        // List 1 declares u64 + 2×double + int + bool; allow padding to 32.
        assert!(std::mem::size_of::<ModuleInfoMsg>() <= 32);
    }

    #[test]
    fn wire_sizes_are_packed_extents() {
        assert_eq!(ModuleInfoMsg::WIRE_BYTES, 29);
        assert_eq!(ModuleContribution::WIRE_BYTES, 29);
        assert_eq!(DelegateProposal::WIRE_BYTES, 53);
        assert_eq!(VertexUpdate::WIRE_BYTES, 12);
        // The packed extent must never exceed the in-memory layout the
        // legacy metering previously charged.
        assert!(ModuleInfoMsg::WIRE_BYTES <= std::mem::size_of::<ModuleInfoMsg>() as u64);
        assert!(ModuleContribution::WIRE_BYTES <= std::mem::size_of::<ModuleContribution>() as u64);
        assert!(DelegateProposal::WIRE_BYTES <= std::mem::size_of::<DelegateProposal>() as u64);
        assert!(VertexUpdate::WIRE_BYTES <= std::mem::size_of::<VertexUpdate>() as u64);
    }

    #[test]
    fn messages_are_copy_pod() {
        fn assert_pod<T: Copy + Send + 'static>() {}
        assert_pod::<ModuleInfoMsg>();
        assert_pod::<VertexUpdate>();
        assert_pod::<DelegateProposal>();
        assert_pod::<ModuleContribution>();
        assert_pod::<MergedArc>();
        assert_pod::<MergedFlow>();
    }
}
