//! Wire formats exchanged between ranks.
//!
//! All messages are plain-old-data structs moved in `Vec`s, so the
//! substrate meters their size as `len × size_of::<T>()` — the bytes an
//! MPI derived datatype would occupy.

/// The paper's List 1 message interface: the full information of one
/// module, plus the duplicate-suppression flag of Algorithm 3.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ModuleInfoMsg {
    /// Module ID (`modID`).
    pub mod_id: u64,
    /// Sum of visit probability of the module (`sumPr`).
    pub flow: f64,
    /// Sum of exit probability of the module (`exitPr`).
    pub exit: f64,
    /// Vertex number in this module (`numMembers`).
    pub members: u32,
    /// Whether this local module has been sent before (`isSent`): the
    /// receiver skips records marked sent, so a module whose info travels
    /// alongside several boundary vertices is only incorporated once.
    pub is_sent: bool,
}

/// Boundary community-ID update: vertex → current module.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VertexUpdate {
    pub vertex: u32,
    pub module: u64,
}

/// A rank's best-local-δL proposal for one delegate (paper Algorithm 2
/// line 4). Carries the target module's info (List 1) so ranks that have
/// never seen the target module can build it (Algorithm 3 lines 23–24).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DelegateProposal {
    pub delegate: u32,
    pub to_module: u64,
    pub delta: f64,
    pub proposer: u32,
    pub target_info: ModuleInfoMsg,
}

/// A rank's local contribution to (or subscription of) a module's
/// statistics, reduced at the module's owner rank. A record with zero
/// contributions and `retract == false` is a pure subscription; a record
/// with `retract == true` withdraws the sender's contribution and
/// subscription (the rank no longer touches the module).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ModuleContribution {
    pub mod_id: u64,
    pub flow: f64,
    pub exit: f64,
    pub members: u32,
    pub retract: bool,
}

/// One aggregated inter-module arc of the merged graph, routed to the
/// new owner of `src` (paper §3.5).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MergedArc {
    pub src: u32,
    pub dst: u32,
    pub weight: f64,
}

/// Flow (visit rate) of one merged vertex, routed to its new owner.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MergedFlow {
    pub vertex: u32,
    pub flow: f64,
}

/// Lookup request/response used when composing original-vertex assignments
/// across merge levels.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AssignmentQuery {
    pub key: u32,
}

/// Response to an [`AssignmentQuery`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AssignmentReply {
    pub key: u32,
    pub module: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_info_is_compact() {
        // List 1 declares u64 + 2×double + int + bool; allow padding to 32.
        assert!(std::mem::size_of::<ModuleInfoMsg>() <= 32);
    }

    #[test]
    fn messages_are_copy_pod() {
        fn assert_pod<T: Copy + Send + 'static>() {}
        assert_pod::<ModuleInfoMsg>();
        assert_pod::<VertexUpdate>();
        assert_pod::<DelegateProposal>();
        assert_pod::<ModuleContribution>();
        assert_pod::<MergedArc>();
        assert_pod::<MergedFlow>();
    }
}
