//! # infomap-distributed — the ICPP'18 distributed Infomap algorithm
//!
//! Implementation of Zeng & Yu's distributed Infomap (the paper's
//! Algorithm 2) on the [`infomap_mpisim`] message-passing substrate:
//!
//! 1. **Preprocessing** (§3.3): delegate partitioning of the input graph
//!    ([`infomap_partition`]), per-vertex visit rates, ghost/subscriber
//!    topology.
//! 2. **Parallel clustering with delegates** (lines 2–7): synchronized
//!    rounds of local greedy moves; each rank proposes the best local `δL`
//!    for every delegate copy it holds, the globally best proposal per
//!    delegate is elected with an allgather and applied identically on all
//!    ranks (with the *minimum-label* tie-break against vertex bouncing);
//!    boundary community IDs and full `Module_Info` records (List 1, with
//!    the `is_sent` duplicate-suppression of Algorithm 3) are swapped with
//!    neighbor ranks; authoritative module statistics are re-established
//!    every round by an owner reduction, which makes the reported global
//!    MDL exact.
//! 3. **Distributed merging** (§3.5): modules contract into a new graph,
//!    re-partitioned 1D.
//! 4. **Parallel clustering without delegates** (lines 9–16) repeated until
//!    the MDL stops improving.
//!
//! Delegate copies are treated as *sub-vertices*: each copy carries the
//! share of the hub's visit rate corresponding to its local arcs, so the
//! owner reduction recovers the exact module flows no matter how the hub's
//! adjacency was scattered — this is what lets the replicated hubs of the
//! delegate partition coexist with an exact map-equation evaluation.
//!
//! Every phase is metered under the names the paper's Figure 8 uses
//! (`FindBestModule`, `BroadcastDelegates`, `SwapBoundaryInfo`, `Other`),
//! so the benchmark harness can regenerate the time-breakdown, scalability
//! and efficiency figures from the counters.
//!
//! The per-rank hot paths run on interned module slots with epoch-stamped
//! dense accumulators and persistent round buffers (DESIGN.md §6.12); the
//! pre-interning scan kernel survives as [`MoveKernel::LegacyScan`] and
//! both are bit-identical, which the `perf_kernels` harness exploits to
//! benchmark one against the other on the same runs.
//!
//! ```
//! use infomap_graph::generators::ring_of_cliques;
//! use infomap_distributed::{DistributedConfig, DistributedInfomap};
//!
//! let (graph, _) = ring_of_cliques(4, 6, 0);
//! let out = DistributedInfomap::new(DistributedConfig {
//!     nranks: 4,
//!     ..Default::default()
//! })
//! .run(&graph);
//! assert_eq!(out.num_modules(), 4);
//! ```

#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod codec;
pub mod config;
pub mod driver;
pub mod messages;
pub mod rounds;
pub mod state;

pub use checkpoint::{
    checkpoint_files_present, CheckpointStore, FileCheckpointStore, RankSnapshot, SnapshotPos,
    SnapshotStore,
};
pub use config::{CommPath, DistributedConfig, MoveKernel, RecoveryConfig};
pub use driver::{
    degraded_output, DistributedInfomap, DistributedOutput, RankProgram, RecoveryReport, StageTrace,
};
pub use rounds::{
    apply_local_move, best_local_move, best_local_move_scan, find_best_modules, LocalCandidate,
    NeighborhoodScratch, RoundBuffers,
};
