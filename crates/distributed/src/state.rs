//! Per-rank local state: the subgraph a rank owns after partitioning,
//! vertex roles (owned / delegate copy / ghost), flows, module assignments
//! and the rank's local view of module statistics.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use infomap_graph::{GraphStore, VertexId};
use infomap_partition::{owner, Arc, Partition};

/// Role of a vertex within one rank's subgraph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VertexKind {
    /// A low-degree vertex this rank owns; its full adjacency is local.
    Owned,
    /// A local copy of a replicated hub; adjacency (and flow) is the local
    /// share only.
    DelegateCopy,
    /// A remote vertex observed as an arc target; only its module id is
    /// tracked (updated by boundary swaps).
    Ghost,
}

/// A rank's view of one module's statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ModuleEntry {
    pub flow: f64,
    pub exit: f64,
    pub members: u32,
}

/// The complete local state of one rank for one clustering stage.
#[derive(Clone, Debug, PartialEq)]
pub struct LocalState {
    pub rank: usize,
    pub nranks: usize,
    /// Global ids of local vertices (owned + delegate copies + ghosts).
    pub verts: Vec<u32>,
    /// Global id → local index.
    pub index: HashMap<u32, u32>,
    pub kind: Vec<VertexKind>,
    /// CSR over local vertices; targets are local indices.
    pub adj_off: Vec<usize>,
    pub adj_tgt: Vec<u32>,
    pub adj_w: Vec<f64>,
    /// Visit-rate share of each local vertex (owned: full `p_v`; delegate
    /// copy: local share; ghost: 0 — never moved locally).
    pub node_flow: Vec<f64>,
    /// Flow-normalized non-self arc flow out of each local vertex, over
    /// the arcs stored here.
    pub out_flow: Vec<f64>,
    /// Current module of each local vertex, as an interned **module slot**
    /// (index into `module_ids` / the `mod_*` stat arrays). Global ids
    /// appear only at communication boundaries; see
    /// [`LocalState::module_gid`].
    pub module_of: Vec<u32>,
    /// Interned module table: slot → global module id. Append-only within
    /// a clustering stage, so slots stay stable across rounds.
    pub module_ids: Vec<u64>,
    /// Global module id → slot (consulted only when global ids arrive off
    /// the wire or leave for it).
    pub module_slot: HashMap<u64, u32>,
    /// Local view of module visit flow, slot-indexed (SoA: the move kernel
    /// touches flow+exit of two slots per candidate, and separate arrays
    /// keep those reads dense — same layout core's `Partitioning` uses).
    /// Only meaningful for slots with `module_present`; absent slots hold
    /// zero so the legacy `get().unwrap_or_default()` reads stay
    /// bit-identical. Wire and checkpoint formats still speak
    /// [`ModuleEntry`] via [`LocalState::module_entry`].
    pub mod_flow: Vec<f64>,
    /// Local view of module exit flow, slot-indexed (see `mod_flow`).
    pub mod_exit: Vec<f64>,
    /// Local view of module member counts, slot-indexed (see `mod_flow`).
    pub mod_members: Vec<u32>,
    /// Whether this rank currently has a view of the slot's module
    /// (mirrors key-existence in the pre-interning `HashMap`).
    pub module_present: Vec<bool>,
    /// Authoritative totals of the modules this rank owns (`modID mod p ==
    /// rank`), refreshed by every owner reduction; consumed by merging.
    pub owned_modules: HashMap<u64, ModuleEntry>,
    /// Local estimate of the total exit flow q (refreshed every sync).
    pub sum_exit: f64,
    /// Owned vertices that are ghosts on other ranks, with the ranks that
    /// track them.
    pub subscribers: Vec<(u32, Vec<usize>)>,
    /// Ranks that will send boundary updates to this rank each round.
    pub providers: Vec<usize>,
    /// Distinct ranks in `subscribers` (send targets each round).
    pub send_targets: Vec<usize>,
    /// `1 / 2W` of the original level-0 graph.
    pub inv_two_w: f64,
    /// Indices of vertices this rank moves (owned + delegate copies).
    pub movable: Vec<u32>,
    /// Module (global id) last announced to subscribers, per local vertex
    /// (`u64::MAX` = never announced); only vertices whose assignment
    /// changed are re-sent (ghost views stay exact because an update is
    /// emitted precisely when the owner's assignment moves).
    pub last_announced: Vec<u64>,
    /// Contribution last shipped to each module's owner, slot-indexed
    /// (delta-based reduction: only changed contributions travel). Entries
    /// are live only where `last_contrib_active` is set.
    pub last_contrib: Vec<(f64, f64, u32)>,
    /// Which `last_contrib` slots hold a shipped contribution.
    pub last_contrib_active: Vec<bool>,
    /// Owner side of the reduction: per (module, source rank) last
    /// absolute contribution.
    pub owner_sources: HashMap<(u64, u32), (f64, f64, u32)>,
    /// Owner side: current subscriber ranks per owned module.
    pub owner_subs: HashMap<u64, Vec<usize>>,
}

impl LocalState {
    /// Number of local arcs — the paper's per-rank workload measure.
    pub fn num_arcs(&self) -> usize {
        self.adj_tgt.len()
    }

    /// Local index of global vertex `v`.
    pub fn local_of(&self, v: u32) -> u32 {
        self.index[&v]
    }

    /// Arcs of local vertex `li` as `(local target, weight)`.
    pub fn arcs_of(&self, li: u32) -> impl Iterator<Item = (u32, f64)> + '_ {
        let r = self.adj_off[li as usize]..self.adj_off[li as usize + 1];
        self.adj_tgt[r.clone()]
            .iter()
            .copied()
            .zip(self.adj_w[r].iter().copied())
    }

    /// Is local vertex `li` a delegate copy?
    pub fn is_delegate(&self, li: u32) -> bool {
        self.kind[li as usize] == VertexKind::DelegateCopy
    }

    // ------------------------------------------------------------------
    // Module-ID interning (slot ↔ global id)
    // ------------------------------------------------------------------

    /// Slot of global module id `gid`, interning it if unseen. The slot's
    /// stats start absent (`default()`), mirroring a missing hash-map key.
    #[inline]
    pub fn intern_module(&mut self, gid: u64) -> u32 {
        if let Some(&s) = self.module_slot.get(&gid) {
            return s;
        }
        let s = self.module_ids.len() as u32;
        self.module_ids.push(gid);
        self.module_slot.insert(gid, s);
        self.mod_flow.push(0.0);
        self.mod_exit.push(0.0);
        self.mod_members.push(0);
        self.module_present.push(false);
        self.last_contrib.push((0.0, 0.0, 0));
        self.last_contrib_active.push(false);
        s
    }

    /// Global id of module slot `s`.
    #[inline]
    pub fn module_gid(&self, s: u32) -> u64 {
        self.module_ids[s as usize]
    }

    /// Global module id of local vertex `li`'s current module.
    #[inline]
    pub fn module_id_of(&self, li: usize) -> u64 {
        self.module_ids[self.module_of[li] as usize]
    }

    /// Number of interned module slots (present or not).
    #[inline]
    pub fn num_module_slots(&self) -> usize {
        self.module_ids.len()
    }

    /// Number of modules this rank currently has a view of (the size of
    /// the pre-interning `modules` hash map).
    pub fn num_known_modules(&self) -> usize {
        self.module_present.iter().filter(|&&p| p).count()
    }

    /// Number of live delta-sync contributions (the size of the
    /// pre-interning `last_contrib` hash map).
    pub fn num_active_contribs(&self) -> usize {
        self.last_contrib_active.iter().filter(|&&p| p).count()
    }

    /// Gather slot `s`'s stats into the AoS view the wire and checkpoint
    /// formats speak.
    #[inline]
    pub fn module_entry(&self, s: u32) -> ModuleEntry {
        let i = s as usize;
        ModuleEntry {
            flow: self.mod_flow[i],
            exit: self.mod_exit[i],
            members: self.mod_members[i],
        }
    }

    /// Scatter an AoS entry into slot `s`'s stat arrays.
    #[inline]
    pub fn set_module_entry(&mut self, s: u32, e: ModuleEntry) {
        let i = s as usize;
        self.mod_flow[i] = e.flow;
        self.mod_exit[i] = e.exit;
        self.mod_members[i] = e.members;
    }

    /// `modules.entry(gid).or_insert(e)` of the pre-interning table:
    /// intern, and set stats only if the module was absent. Returns the
    /// slot.
    #[inline]
    pub fn insert_module_if_absent(&mut self, gid: u64, e: ModuleEntry) -> u32 {
        let s = self.intern_module(gid);
        if !self.module_present[s as usize] {
            self.module_present[s as usize] = true;
            self.set_module_entry(s, e);
        }
        s
    }

    /// `modules.insert(gid, e)`: intern and overwrite. Returns the slot.
    #[inline]
    pub fn set_module(&mut self, gid: u64, e: ModuleEntry) -> u32 {
        let s = self.intern_module(gid);
        self.module_present[s as usize] = true;
        self.set_module_entry(s, e);
        s
    }

    /// `modules.remove(&gid)`: mark absent and restore the default stats
    /// (keeping the invariant that absent slots read as `default()`).
    pub fn remove_module(&mut self, gid: u64) {
        if let Some(&s) = self.module_slot.get(&gid) {
            self.module_present[s as usize] = false;
            self.set_module_entry(s, ModuleEntry::default());
        }
    }
}

/// Assemble a [`LocalState`] from the arcs a rank was assigned.
///
/// * `owned_filter(v)` — true for vertices this rank owns outright;
/// * `delegate_set` — vertices replicated everywhere (empty in stage 2);
/// * `full_flow(v)` — the full visit rate of an owned vertex;
/// * `subscribers` / `providers` — boundary topology (precomputed
///   globally for stage 1; derivable locally for 1D stage 2).
///
/// Public so the shard-mode prepare path (which reconstructs the same
/// inputs collectively from per-rank snapshot shards) can assemble a
/// bit-identical state without the monolithic [`Partition`].
#[allow(clippy::too_many_arguments)]
pub fn assemble(
    rank: usize,
    nranks: usize,
    arcs: &[Arc],
    delegate_set: &HashSet<u32>,
    owned: &[u32],
    full_flow: &dyn Fn(u32) -> f64,
    inv_two_w: f64,
    subscribers: Vec<(u32, Vec<usize>)>,
    providers: Vec<usize>,
) -> LocalState {
    // Collect local vertex set: owned, then delegates with local arcs,
    // then ghosts, in deterministic order.
    let mut verts: Vec<u32> = Vec::new();
    let mut index: HashMap<u32, u32> = HashMap::new();
    let push = |v: u32, verts: &mut Vec<u32>, index: &mut HashMap<u32, u32>| {
        index.entry(v).or_insert_with(|| {
            verts.push(v);
            (verts.len() - 1) as u32
        });
    };
    for &v in owned {
        push(v, &mut verts, &mut index);
    }
    let seen_delegates: Vec<u32> = arcs
        .iter()
        .flat_map(|a| [a.src, a.dst])
        .filter(|v| delegate_set.contains(v))
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    for v in seen_delegates {
        push(v, &mut verts, &mut index);
    }
    let ghosts: Vec<u32> = arcs
        .iter()
        .flat_map(|a| [a.src, a.dst])
        .filter(|v| !index.contains_key(v))
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    for v in ghosts {
        push(v, &mut verts, &mut index);
    }

    let n = verts.len();
    let kind: Vec<VertexKind> = verts
        .iter()
        .map(|v| {
            if delegate_set.contains(v) {
                VertexKind::DelegateCopy
            } else if owned.binary_search(v).is_ok() {
                VertexKind::Owned
            } else {
                VertexKind::Ghost
            }
        })
        .collect();

    // CSR over local sources.
    let mut deg = vec![0usize; n];
    for a in arcs {
        deg[index[&a.src] as usize] += 1;
    }
    let mut adj_off = Vec::with_capacity(n + 1);
    adj_off.push(0usize);
    for d in &deg {
        adj_off.push(adj_off.last().unwrap() + d);
    }
    let mut cursor = adj_off[..n].to_vec();
    let mut adj_tgt = vec![0u32; arcs.len()];
    let mut adj_w = vec![0.0; arcs.len()];
    for a in arcs {
        let s = index[&a.src] as usize;
        adj_tgt[cursor[s]] = index[&a.dst];
        adj_w[cursor[s]] = a.weight;
        cursor[s] += 1;
    }

    // Flows. Delegate copies carry their local share: Σ w/2W over local
    // non-self arcs + 2·w/2W for local self-arcs, so shares sum to the full
    // p_v across ranks.
    let mut node_flow = vec![0.0; n];
    let mut out_flow = vec![0.0; n];
    for (li, &v) in verts.iter().enumerate() {
        match kind[li] {
            VertexKind::Owned => {
                node_flow[li] = full_flow(v);
            }
            VertexKind::DelegateCopy | VertexKind::Ghost => {}
        }
    }
    for a in arcs {
        let s = index[&a.src] as usize;
        let f = a.weight * inv_two_w;
        if a.src == a.dst {
            if kind[s] == VertexKind::DelegateCopy {
                node_flow[s] += 2.0 * f;
            }
        } else {
            out_flow[s] += f;
            if kind[s] == VertexKind::DelegateCopy {
                node_flow[s] += f;
            }
        }
    }

    let movable: Vec<u32> = (0..n as u32)
        .filter(|&li| kind[li as usize] != VertexKind::Ghost)
        .collect();

    let send_targets: Vec<usize> = subscribers
        .iter()
        .flat_map(|(_, rs)| rs.iter().copied())
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();

    // Singleton initialization: every vertex its own module, interned at
    // slot == local index. Stats here are local approximations; the first
    // owner reduction replaces them with exact values before any move
    // decision is made.
    let module_of: Vec<u32> = (0..n as u32).collect();
    let module_ids: Vec<u64> = verts.iter().map(|&v| v as u64).collect();
    let module_slot: HashMap<u64, u32> = module_ids
        .iter()
        .enumerate()
        .map(|(s, &gid)| (gid, s as u32))
        .collect();
    let mod_flow = node_flow.clone();
    let mod_exit = out_flow.clone();
    let mod_members = vec![1u32; n];
    let module_present = vec![true; n];
    let sum_exit = 0.0; // refreshed by the first sync round

    LocalState {
        rank,
        nranks,
        verts,
        index,
        kind,
        adj_off,
        adj_tgt,
        adj_w,
        node_flow,
        out_flow,
        module_of,
        module_ids,
        module_slot,
        mod_flow,
        mod_exit,
        mod_members,
        module_present,
        owned_modules: HashMap::new(),
        sum_exit,
        subscribers,
        providers,
        send_targets,
        inv_two_w,
        movable,
        last_announced: vec![u64::MAX; n],
        last_contrib: vec![(0.0, 0.0, 0); n],
        last_contrib_active: vec![false; n],
        owner_sources: HashMap::new(),
        owner_subs: HashMap::new(),
    }
}

/// Build the per-rank states for stage 1 from a delegate partition of the
/// original graph. The boundary topology (who tracks whose ghosts) is
/// derived from the partition, mirroring the ghost discovery a real MPI
/// preprocessing step performs with an all-to-all of vertex ids.
pub fn build_stage1_states<G: GraphStore + ?Sized>(
    graph: &G,
    partition: &Partition,
) -> Vec<LocalState> {
    let p = partition.nranks;
    let inv_two_w = 1.0 / (2.0 * graph.total_weight());
    let delegate_set: HashSet<u32> = partition.delegates.iter().copied().collect();

    // presence[v] = ranks that observe v as a non-delegate vertex.
    let mut presence: HashMap<u32, HashSet<usize>> = HashMap::new();
    for (r, arcs) in partition.arcs.iter().enumerate() {
        for a in arcs {
            for v in [a.src, a.dst] {
                if !delegate_set.contains(&v) {
                    presence.entry(v).or_default().insert(r);
                }
            }
        }
    }

    (0..p)
        .map(|rank| {
            let owned = partition.owned_low_degree(rank);
            let mut subscribers: Vec<(u32, Vec<usize>)> = owned
                .iter()
                .filter_map(|&v| {
                    let subs: Vec<usize> = presence
                        .get(&v)
                        .map(|s| {
                            let mut subs: Vec<usize> =
                                s.iter().copied().filter(|&r| r != rank).collect();
                            subs.sort_unstable();
                            subs
                        })
                        .unwrap_or_default();
                    if subs.is_empty() {
                        None
                    } else {
                        Some((v, subs))
                    }
                })
                .collect();
            subscribers.sort_by_key(|(v, _)| *v);

            // Providers: owners of this rank's ghosts.
            let mut providers: BTreeSet<usize> = BTreeSet::new();
            for a in &partition.arcs[rank] {
                for v in [a.src, a.dst] {
                    if !delegate_set.contains(&v) && owner(v as VertexId, p) != rank {
                        providers.insert(owner(v as VertexId, p));
                    }
                }
            }
            let providers: Vec<usize> = providers.into_iter().collect();

            assemble(
                rank,
                p,
                &partition.arcs[rank],
                &delegate_set,
                &owned,
                &|v| graph.strength(v as VertexId) * inv_two_w,
                inv_two_w,
                subscribers,
                providers,
            )
        })
        .collect()
}

/// Build one rank's state for a 1D-partitioned (delegate-free) level: the
/// rank holds all arcs sourced at its owned vertices, and the boundary
/// topology is derived locally from arc targets (1D adjacency is
/// symmetric: if I see your vertex, you see mine).
pub fn build_1d_state(
    rank: usize,
    nranks: usize,
    arcs: Vec<Arc>,
    flows: &HashMap<u32, f64>,
    inv_two_w: f64,
) -> LocalState {
    let mut owned_set: BTreeSet<u32> = arcs
        .iter()
        .map(|a| a.src)
        .filter(|&v| owner(v, nranks) == rank)
        .collect();
    // Owned vertices with flow but no arcs (isolated modules) still exist.
    for (&v, _) in flows.iter() {
        if owner(v, nranks) == rank {
            owned_set.insert(v);
        }
    }
    let owned: Vec<u32> = owned_set.into_iter().collect();

    // Subscribers: for owned vertex v, every rank owning one of v's
    // neighbors holds v as a ghost.
    let mut neighbor_ranks: BTreeMap<u32, BTreeSet<usize>> = BTreeMap::new();
    let mut providers: BTreeSet<usize> = BTreeSet::new();
    for a in &arcs {
        let dst_owner = owner(a.dst, nranks);
        if dst_owner != rank {
            neighbor_ranks.entry(a.src).or_default().insert(dst_owner);
            providers.insert(dst_owner);
        }
    }
    let subscribers: Vec<(u32, Vec<usize>)> = neighbor_ranks
        .into_iter()
        .map(|(v, s)| (v, s.into_iter().collect()))
        .collect();
    let providers: Vec<usize> = providers.into_iter().collect();

    let empty = HashSet::new();
    assemble(
        rank,
        nranks,
        &arcs,
        &empty,
        &owned,
        &|v| flows.get(&v).copied().unwrap_or(0.0),
        inv_two_w,
        subscribers,
        providers,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use infomap_graph::{generators, Graph};
    use infomap_partition::DelegateThreshold;

    fn states_for(p: usize) -> (Graph, Vec<LocalState>) {
        let degs = generators::power_law_degrees(200, 2.1, 2, 60, 3);
        let g = generators::chung_lu(&degs, 4);
        let part = Partition::delegate(&g, p, DelegateThreshold::Fixed(20), true);
        let states = build_stage1_states(&g, &part);
        (g, states)
    }

    #[test]
    fn delegate_flow_shares_sum_to_full_visit_rate() {
        let (g, states) = states_for(4);
        let inv_two_w = 1.0 / (2.0 * g.total_weight());
        // For every delegate, the sum of copy shares equals p_v.
        let mut shares: HashMap<u32, f64> = HashMap::new();
        for st in &states {
            for (li, &v) in st.verts.iter().enumerate() {
                if st.kind[li] == VertexKind::DelegateCopy {
                    *shares.entry(v).or_insert(0.0) += st.node_flow[li];
                }
            }
        }
        assert!(!shares.is_empty(), "test graph grew no delegates");
        for (v, share) in shares {
            let full = g.strength(v) * inv_two_w;
            assert!(
                (share - full).abs() < 1e-12,
                "vertex {v}: shares {share} vs p_v {full}"
            );
        }
    }

    #[test]
    fn owned_vertices_partition_across_ranks() {
        let (g, states) = states_for(4);
        let mut owned_count = 0usize;
        let mut delegate_ids: HashSet<u32> = HashSet::new();
        for st in &states {
            for (li, &v) in st.verts.iter().enumerate() {
                match st.kind[li] {
                    VertexKind::Owned => owned_count += 1,
                    VertexKind::DelegateCopy => {
                        delegate_ids.insert(v);
                    }
                    VertexKind::Ghost => {}
                }
            }
        }
        assert_eq!(owned_count + delegate_ids.len(), g.num_vertices());
    }

    #[test]
    fn subscriber_and_provider_topologies_agree() {
        let (_, states) = states_for(4);
        // If rank a lists rank b as a subscriber of some vertex, rank b
        // must list rank a as a provider.
        for st in &states {
            for (_, subs) in &st.subscribers {
                for &s in subs {
                    assert!(
                        states[s].providers.contains(&st.rank),
                        "rank {s} missing provider {}",
                        st.rank
                    );
                }
            }
        }
    }

    #[test]
    fn arcs_are_conserved() {
        let (g, states) = states_for(3);
        let total: usize = states.iter().map(|s| s.num_arcs()).sum();
        let expect: usize = (0..g.num_vertices() as u32).map(|u| g.degree(u)).sum();
        assert_eq!(total, expect);
    }

    #[test]
    fn one_d_state_derives_topology_locally() {
        let g = generators::erdos_renyi(40, 100, 5);
        let p = 3;
        let part = Partition::one_d(&g, p);
        let inv = 1.0 / (2.0 * g.total_weight());
        let flows: HashMap<u32, f64> = (0..40u32).map(|v| (v, g.strength(v) * inv)).collect();
        let states: Vec<LocalState> = (0..p)
            .map(|r| build_1d_state(r, p, part.arcs[r].clone(), &flows, inv))
            .collect();
        for st in &states {
            for (_, subs) in &st.subscribers {
                for &s in subs {
                    assert!(states[s].providers.contains(&st.rank));
                }
            }
        }
        let owned_total: usize = states
            .iter()
            .map(|s| s.kind.iter().filter(|&&k| k == VertexKind::Owned).count())
            .sum();
        assert_eq!(owned_total, 40);
    }
}
