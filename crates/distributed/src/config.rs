//! Configuration of the distributed algorithm.

use infomap_partition::DelegateThreshold;

/// Which best-move kernel the greedy sweep uses. Both kernels are
/// bit-identical (same candidates, same δL bits, same tie-breaks); the
/// choice only affects wall-clock, never results — which is what lets the
/// `perf_kernels` harness measure one against the other on the same run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MoveKernel {
    /// Epoch-stamped dense accumulator over interned module slots:
    /// O(deg) per vertex (DESIGN.md §6.12). The default.
    #[default]
    Stamped,
    /// The pre-interning linear scan of a scratch vec: O(deg·k) per vertex
    /// where k is the number of distinct neighbor modules. Kept as the
    /// measurable baseline.
    LegacyScan,
}

/// Which wire layout and exchange pattern the three communication paths
/// use (DESIGN.md §6.13). Both paths drive the clustering through the
/// identical trajectory — same proposals, same elected winners, same MDL
/// bits, same assignments per seed — the choice only affects how many
/// bytes, messages and collectives the substrate meters, which is what
/// the `perf_comm` harness measures one path against the other.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CommPath {
    /// Owner-reduced delegate election (proposals route to the delegate's
    /// owner via alltoallv; only winners are gathered back), varint/delta
    /// wire codecs on every batch, and coalesced sync rounds (moves count
    /// and MDL partials piggyback on exchanges that already happen). The
    /// default.
    #[default]
    Compact,
    /// The pre-overhaul paths: the election allgathers every proposal to
    /// every rank (O(total × p) receive bytes), records travel as padded
    /// POD structs, and the moves count / MDL reduction are standalone
    /// collectives. Kept as the measurable baseline and as the bit-level
    /// cross-check of the compact path.
    Legacy,
}

/// Tunables of [`crate::DistributedInfomap`]. The defaults follow the
/// paper's §4 setup (`d_high` = rank count, rebalancing on, minimum-label
/// tie-break on, full `Module_Info` swapping on).
#[derive(Clone, Copy, Debug)]
pub struct DistributedConfig {
    /// Number of simulated ranks.
    pub nranks: usize,
    /// Delegate degree threshold. The library default is the
    /// scale-adjusted `Auto(4.0)` (`max(p, 4×mean degree)`); the paper's
    /// literal `RankCount` rule is equivalent at the paper's world sizes
    /// and available for fidelity runs.
    pub threshold: DelegateThreshold,
    /// Run the partition-imbalance correction pass of §3.3.
    pub rebalance: bool,
    /// Outer-loop stop: improvement threshold θ on the global MDL.
    pub theta: f64,
    /// Cap on outer iterations (merge levels).
    pub max_outer_iterations: usize,
    /// Cap on synchronized inner rounds per clustering stage.
    pub max_inner_iterations: usize,
    /// Minimum δL a move must gain.
    pub min_gain: f64,
    /// Seed for per-rank sweep-order randomization.
    pub seed: u64,
    /// Minimum-label tie-break against vertex bouncing (§3.4). Disabling
    /// this is the `ablation_bouncing` experiment.
    pub min_label_tiebreak: bool,
    /// Swap full `Module_Info` records with boundary IDs (Algorithm 3).
    /// Disabling degrades to the "naive swap" the paper's §3.4 argues
    /// against — the `ablation_swap` experiment.
    pub full_module_swap: bool,
    /// Partial-parallelism guard: per round only a hashed `1/k` subset of
    /// vertices may move (k = this denominator; 1 = everyone). Bounds the
    /// number of vertices that simultaneously join one module on stale
    /// statistics, which otherwise over-merges relative to the sequential
    /// algorithm.
    pub move_fraction_denom: u32,
    /// Exact owner reductions of module statistics (and exact global MDL)
    /// run every this-many rounds instead of every round. Between syncs,
    /// module information travels by the paper's gossip (Algorithm 3)
    /// only. The reduction has an O(p) hotspot at the owners of popular
    /// modules, so syncing every round caps scalability; the paper's own
    /// "Other" phase shrinks with p because it is purely local.
    pub sync_interval: usize,
    /// Best-move kernel of the greedy sweep (bit-identical results either
    /// way; see [`MoveKernel`]).
    pub kernel: MoveKernel,
    /// Intra-rank worker threads for the local sweep (DESIGN.md §6 note
    /// 16). Each rank's eligible vertices are statically cut into this
    /// many arc-balanced slices, evaluated slice-parallel against the
    /// frozen round-start state, and merged in the one global shuffled
    /// order — so MDL series, moves, and assignments are **bit-identical
    /// for every value**, including 1. Only wall-clock changes.
    pub threads: usize,
    /// Communication path (bit-identical trajectories either way; see
    /// [`CommPath`]).
    pub comm_path: CommPath,
    /// Checkpoint/retry policy for fault-tolerant runs.
    pub recovery: RecoveryConfig,
}

/// Checkpoint and retry policy of the fault-tolerant driver
/// ([`crate::DistributedInfomap::run_with_plan`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Checkpoint the clustering state every this-many inner rounds;
    /// `0` (the default) disables checkpointing entirely, leaving the
    /// fault-free execution bit-identical to a build without it.
    pub checkpoint_every: usize,
    /// How many times a failed attempt may be retried from the last
    /// checkpoint (or from scratch when none was committed yet).
    pub max_retries: usize,
    /// When retries are exhausted, return the best checkpointed clustering
    /// (degraded result) instead of an error.
    pub degrade_gracefully: bool,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            checkpoint_every: 0,
            max_retries: 3,
            degrade_gracefully: false,
        }
    }
}

impl Default for DistributedConfig {
    fn default() -> Self {
        DistributedConfig {
            nranks: 4,
            threshold: DelegateThreshold::Auto(4.0),
            rebalance: true,
            theta: 1e-10,
            max_outer_iterations: 30,
            max_inner_iterations: 40,
            min_gain: 1e-10,
            seed: 0,
            min_label_tiebreak: true,
            full_module_swap: true,
            move_fraction_denom: 2,
            sync_interval: 1,
            kernel: MoveKernel::default(),
            threads: 1,
            comm_path: CommPath::default(),
            recovery: RecoveryConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = DistributedConfig::default();
        assert_eq!(c.threshold, DelegateThreshold::Auto(4.0));
        assert!(c.rebalance);
        assert!(c.min_label_tiebreak);
        assert!(c.full_module_swap);
        assert_eq!(c.kernel, MoveKernel::Stamped);
        assert_eq!(c.comm_path, CommPath::Compact);
        assert_eq!(c.threads, 1, "thread parallelism is opt-in");
    }

    #[test]
    fn recovery_is_disabled_by_default() {
        let r = DistributedConfig::default().recovery;
        assert_eq!(r.checkpoint_every, 0, "fault-free runs must not checkpoint");
        assert_eq!(r.max_retries, 3);
        assert!(!r.degrade_gracefully);
    }
}
