//! Round-boundary checkpointing of the distributed clustering state.
//!
//! A checkpoint is everything a rank needs to resume the algorithm from a
//! committed round boundary: its [`LocalState`] (module assignments and
//! statistics, delta-sync bookkeeping), the stage cursor (round number,
//! MDL trajectory, mid-stream RNG), the delegate assignment, and the
//! driver-level carry (original-vertex assignments, stage trace, previous
//! MDL). Restoring a snapshot and replaying the remaining rounds is
//! bit-identical to the uninterrupted run, because the RNG resumes exactly
//! where it was captured.
//!
//! Consistency is by construction, not by protocol: commits only happen
//! immediately after a consensus collective with no communication event in
//! between (see `cluster_stage_recoverable`), and injected crashes only
//! fire at communication-event boundaries — so either every rank committed
//! a boundary or none did, and [`CheckpointStore::latest_pos`] can insist
//! on global agreement.

use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use infomap_mpisim::{WireDecodeError, WirePayload};
use rand::prelude::*;
use rand::rngs::StdRng;

use crate::driver::StageTrace;
use crate::rounds::StageCursor;
use crate::state::{LocalState, ModuleEntry, VertexKind};

/// Global position of a snapshot: which stage, merge level and round the
/// checkpointed boundary belongs to. Identical on every rank of a
/// committed checkpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct SnapshotPos {
    /// 1 = stage-1 clustering (with delegates), 2 = stage-2.
    pub stage: u8,
    /// Merge level (0 for stage 1).
    pub level: u32,
    /// The next round the resumed stage will execute.
    pub round: u32,
}

impl SnapshotPos {
    /// Pack into one word for cheap consensus collectives.
    pub fn as_word(&self) -> u64 {
        ((self.stage as u64) << 48) | ((self.level as u64) << 16) | self.round as u64
    }
}

/// One rank's checkpoint.
#[derive(Clone, Debug)]
pub struct RankSnapshot {
    pub pos: SnapshotPos,
    /// The clustering state of the current level.
    pub st: LocalState,
    /// Mid-stage cursor to resume `cluster_stage_recoverable` from.
    pub cursor: StageCursor,
    /// Delegate (stage 1) assignment map at the boundary.
    pub delegate_assign: BTreeMap<u32, u64>,
    /// Original-vertex assignments carried by the driver (empty during
    /// stage 1, where they are derived at the first merge).
    pub assign: Vec<(u32, u32)>,
    /// Stage trace accumulated so far.
    pub trace: Vec<StageTrace>,
    /// MDL of the last completed stage (driver carry).
    pub prev_mdl: f64,
    /// Vertex count of the current level graph (driver carry).
    pub level_vertices: usize,
}

impl RankSnapshot {
    /// Approximate bytes a serialized checkpoint would occupy — the
    /// evolving clustering data, not the level topology (which is
    /// reconstructible from the partitioned input). Used to meter
    /// checkpoint writes/reads for the cost model.
    pub fn approx_wire_bytes(&self) -> u64 {
        let st = &self.st;
        let assignments = st.module_of.len() as u64 * 8;
        // Module tables: id (8) + flow/exit (16) + members (4). Only
        // modules this rank has a live view of would be serialized — the
        // interned slot tables are rebuilt on restore.
        let tables = (st.num_known_modules() + st.owned_modules.len()) as u64 * 28;
        let delta_bookkeeping = (st.num_active_contribs() + st.owner_sources.len()) as u64 * 28;
        let delegate = self.delegate_assign.len() as u64 * 12;
        let carry = self.assign.len() as u64 * 8 + self.cursor.mdl_series.len() as u64 * 8;
        assignments + tables + delta_bookkeeping + delegate + carry + 64
    }
}

/// Where committed snapshots live, abstracted over the run mode.
///
/// The thread world uses the in-memory [`CheckpointStore`]; a
/// multi-process run uses the [`FileCheckpointStore`], whose snapshots
/// survive a SIGKILLed rank. The driver's retry loop and the process
/// launcher both speak only this trait.
///
/// The in-memory store can rely on the simulator's guarantee that commits
/// are all-or-nothing across ranks; a real process can die *between* the
/// consensus collective and its own commit, so `agreed_pos` must find the
/// newest boundary **every** rank holds a snapshot for (which is why the
/// file store retains two generations per rank).
pub trait SnapshotStore: Sync {
    /// Commit `rank`'s snapshot at its position.
    fn commit(&self, rank: usize, snap: &RankSnapshot);

    /// The newest position every rank has a committed snapshot for.
    fn agreed_pos(&self) -> Option<SnapshotPos>;

    /// `rank`'s snapshot at the agreed position.
    fn restore_agreed(&self, rank: usize) -> Option<RankSnapshot>;

    /// Total rank-snapshot commits over the store's lifetime.
    fn checkpoints_committed(&self) -> u64;
}

/// In-memory stand-in for the checkpoint storage of a real deployment
/// (burst buffer / parallel FS): one slot per rank, written behind the
/// stage's consensus collective and read back at the start of a retry.
#[derive(Debug)]
pub struct CheckpointStore {
    slots: Vec<Mutex<Option<RankSnapshot>>>,
    commits: AtomicU64,
}

impl CheckpointStore {
    pub fn new(nranks: usize) -> Self {
        CheckpointStore {
            slots: (0..nranks).map(|_| Mutex::new(None)).collect(),
            commits: AtomicU64::new(0),
        }
    }

    /// Commit `rank`'s snapshot, replacing any older one.
    pub fn commit(&self, rank: usize, snap: RankSnapshot) {
        *self.slots[rank].lock().unwrap() = Some(snap);
        self.commits.fetch_add(1, Ordering::SeqCst);
    }

    /// The globally agreed checkpoint position, if any checkpoint was
    /// committed. Panics if ranks disagree — the commit protocol makes
    /// that impossible, so disagreement is a bug, not a recoverable state.
    pub fn latest_pos(&self) -> Option<SnapshotPos> {
        let mut pos: Option<SnapshotPos> = None;
        for (rank, slot) in self.slots.iter().enumerate() {
            let guard = slot.lock().unwrap();
            match (&*guard, pos) {
                (None, None) => {}
                (Some(s), None) if rank == 0 => pos = Some(s.pos),
                (Some(s), Some(p)) => {
                    assert_eq!(s.pos, p, "rank {rank} checkpointed a different boundary");
                }
                _ => panic!("checkpoint store is inconsistent: rank {rank} differs"),
            }
        }
        pos
    }

    /// A clone of `rank`'s latest snapshot.
    pub fn restore(&self, rank: usize) -> Option<RankSnapshot> {
        self.slots[rank].lock().unwrap().clone()
    }

    /// Total rank-snapshot commits over the store's lifetime.
    pub fn checkpoints_committed(&self) -> u64 {
        self.commits.load(Ordering::SeqCst)
    }
}

impl SnapshotStore for CheckpointStore {
    fn commit(&self, rank: usize, snap: &RankSnapshot) {
        CheckpointStore::commit(self, rank, snap.clone());
    }

    fn agreed_pos(&self) -> Option<SnapshotPos> {
        self.latest_pos()
    }

    fn restore_agreed(&self, rank: usize) -> Option<RankSnapshot> {
        self.restore(rank)
    }

    fn checkpoints_committed(&self) -> u64 {
        CheckpointStore::checkpoints_committed(self)
    }
}

// ---------------------------------------------------------------------
// Snapshot serialization
// ---------------------------------------------------------------------
//
// The binary snapshot format a file-backed store persists. Everything is
// encoded with the deterministic little-endian [`WirePayload`] primitives
// (floats as IEEE bit patterns), so a snapshot written by one process
// decodes bit-identically in another.
//
// Hash maps are serialized as **sorted** pair vectors: byte-stable output
// for identical logical state, and rebuilt verbatim on decode. Two maps
// are not serialized at all because they are derived: `index` (position of
// each id in `verts`) and `module_slot` (position in `module_ids`).
//
// The one non-serializable field is the cursor's `StdRng`. The sweep RNG
// is consumed by exactly one `shuffle` of the (stage-static) movable list
// per round, and is freshly seeded from `cfg.seed ^ f(rank)` at every
// stage start — so instead of persisting generator internals, the decoder
// reseeds and replays `next_round` shuffles on a scratch copy. The
// replayed generator is in exactly the state the uninterrupted run's
// generator was in at the boundary, under any `StdRng` implementation.

/// Format version of the serialized snapshot. Bumped on layout changes so
/// a stale file fails loudly instead of decoding garbage.
const SNAPSHOT_VERSION: u32 = 1;

fn encode_kind(k: VertexKind, out: &mut Vec<u8>) {
    let v: u8 = match k {
        VertexKind::Owned => 0,
        VertexKind::DelegateCopy => 1,
        VertexKind::Ghost => 2,
    };
    v.encode_into(out);
}

fn decode_kind(buf: &mut &[u8]) -> Result<VertexKind, WireDecodeError> {
    match u8::decode_from(buf)? {
        0 => Ok(VertexKind::Owned),
        1 => Ok(VertexKind::DelegateCopy),
        2 => Ok(VertexKind::Ghost),
        _ => Err(WireDecodeError {
            context: "VertexKind",
        }),
    }
}

fn encode_entry(e: &ModuleEntry, out: &mut Vec<u8>) {
    e.flow.encode_into(out);
    e.exit.encode_into(out);
    e.members.encode_into(out);
}

fn decode_entry(buf: &mut &[u8]) -> Result<ModuleEntry, WireDecodeError> {
    Ok(ModuleEntry {
        flow: f64::decode_from(buf)?,
        exit: f64::decode_from(buf)?,
        members: u32::decode_from(buf)?,
    })
}

fn encode_state(st: &LocalState, out: &mut Vec<u8>) {
    st.rank.encode_into(out);
    st.nranks.encode_into(out);
    st.verts.encode_into(out);
    (st.kind.len() as u64).encode_into(out);
    for &k in &st.kind {
        encode_kind(k, out);
    }
    st.adj_off.encode_into(out);
    st.adj_tgt.encode_into(out);
    st.adj_w.encode_into(out);
    st.node_flow.encode_into(out);
    st.out_flow.encode_into(out);
    st.module_of.encode_into(out);
    st.module_ids.encode_into(out);
    // Wire format unchanged by the SoA split: entries travel AoS.
    (st.mod_flow.len() as u64).encode_into(out);
    for s in 0..st.mod_flow.len() as u32 {
        encode_entry(&st.module_entry(s), out);
    }
    st.module_present.encode_into(out);
    let mut owned: Vec<(&u64, &ModuleEntry)> = st.owned_modules.iter().collect();
    owned.sort_by_key(|(&m, _)| m);
    (owned.len() as u64).encode_into(out);
    for (&m, e) in owned {
        m.encode_into(out);
        encode_entry(e, out);
    }
    st.sum_exit.encode_into(out);
    st.subscribers.encode_into(out);
    st.providers.encode_into(out);
    st.send_targets.encode_into(out);
    st.inv_two_w.encode_into(out);
    st.movable.encode_into(out);
    st.last_announced.encode_into(out);
    st.last_contrib.encode_into(out);
    st.last_contrib_active.encode_into(out);
    let mut sources: Vec<_> = st.owner_sources.iter().collect();
    sources.sort_by_key(|(&k, _)| k);
    (sources.len() as u64).encode_into(out);
    for (&k, &v) in sources {
        k.encode_into(out);
        v.encode_into(out);
    }
    let mut subs: Vec<(&u64, &Vec<usize>)> = st.owner_subs.iter().collect();
    subs.sort_by_key(|(&m, _)| m);
    (subs.len() as u64).encode_into(out);
    for (&m, v) in subs {
        m.encode_into(out);
        v.encode_into(out);
    }
}

fn decode_state(buf: &mut &[u8]) -> Result<LocalState, WireDecodeError> {
    let rank = usize::decode_from(buf)?;
    let nranks = usize::decode_from(buf)?;
    let verts: Vec<u32> = Vec::decode_from(buf)?;
    let nkind = u64::decode_from(buf)? as usize;
    let mut kind = Vec::with_capacity(nkind);
    for _ in 0..nkind {
        kind.push(decode_kind(buf)?);
    }
    let adj_off = Vec::decode_from(buf)?;
    let adj_tgt = Vec::decode_from(buf)?;
    let adj_w = Vec::decode_from(buf)?;
    let node_flow = Vec::decode_from(buf)?;
    let out_flow = Vec::decode_from(buf)?;
    let module_of = Vec::decode_from(buf)?;
    let module_ids: Vec<u64> = Vec::decode_from(buf)?;
    let nstats = u64::decode_from(buf)? as usize;
    let mut mod_flow = Vec::with_capacity(nstats);
    let mut mod_exit = Vec::with_capacity(nstats);
    let mut mod_members = Vec::with_capacity(nstats);
    for _ in 0..nstats {
        let e = decode_entry(buf)?;
        mod_flow.push(e.flow);
        mod_exit.push(e.exit);
        mod_members.push(e.members);
    }
    let module_present = Vec::decode_from(buf)?;
    let nowned = u64::decode_from(buf)? as usize;
    let mut owned_modules = HashMap::with_capacity(nowned);
    for _ in 0..nowned {
        let m = u64::decode_from(buf)?;
        owned_modules.insert(m, decode_entry(buf)?);
    }
    let sum_exit = f64::decode_from(buf)?;
    let subscribers = Vec::decode_from(buf)?;
    let providers = Vec::decode_from(buf)?;
    let send_targets = Vec::decode_from(buf)?;
    let inv_two_w = f64::decode_from(buf)?;
    let movable = Vec::decode_from(buf)?;
    let last_announced = Vec::decode_from(buf)?;
    let last_contrib = Vec::decode_from(buf)?;
    let last_contrib_active = Vec::decode_from(buf)?;
    let nsources = u64::decode_from(buf)? as usize;
    let mut owner_sources = HashMap::with_capacity(nsources);
    for _ in 0..nsources {
        let k: (u64, u32) = WirePayload::decode_from(buf)?;
        owner_sources.insert(k, WirePayload::decode_from(buf)?);
    }
    let nsubs = u64::decode_from(buf)? as usize;
    let mut owner_subs = HashMap::with_capacity(nsubs);
    for _ in 0..nsubs {
        let m = u64::decode_from(buf)?;
        owner_subs.insert(m, Vec::decode_from(buf)?);
    }
    // Derived maps.
    let index: HashMap<u32, u32> = verts
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i as u32))
        .collect();
    let module_slot: HashMap<u64, u32> = module_ids
        .iter()
        .enumerate()
        .map(|(s, &gid)| (gid, s as u32))
        .collect();
    Ok(LocalState {
        rank,
        nranks,
        verts,
        index,
        kind,
        adj_off,
        adj_tgt,
        adj_w,
        node_flow,
        out_flow,
        module_of,
        module_ids,
        module_slot,
        mod_flow,
        mod_exit,
        mod_members,
        module_present,
        owned_modules,
        sum_exit,
        subscribers,
        providers,
        send_targets,
        inv_two_w,
        movable,
        last_announced,
        last_contrib,
        last_contrib_active,
        owner_sources,
        owner_subs,
    })
}

fn encode_trace(t: &StageTrace, out: &mut Vec<u8>) {
    t.stage.encode_into(out);
    t.level.encode_into(out);
    t.codelength.encode_into(out);
    t.num_modules.encode_into(out);
    t.vertices_before.encode_into(out);
    t.vertices_after.encode_into(out);
    t.inner_iterations.encode_into(out);
    t.moves.encode_into(out);
    t.mdl_series.encode_into(out);
}

fn decode_trace(buf: &mut &[u8]) -> Result<StageTrace, WireDecodeError> {
    Ok(StageTrace {
        stage: u8::decode_from(buf)?,
        level: usize::decode_from(buf)?,
        codelength: f64::decode_from(buf)?,
        num_modules: usize::decode_from(buf)?,
        vertices_before: usize::decode_from(buf)?,
        vertices_after: usize::decode_from(buf)?,
        inner_iterations: usize::decode_from(buf)?,
        moves: u64::decode_from(buf)?,
        mdl_series: Vec::decode_from(buf)?,
    })
}

/// The stage-seed mix of `cluster_stage_recoverable`: every stage reseeds
/// its sweep RNG with this, which is what makes RNG-by-replay possible.
pub fn stage_rng_seed(seed: u64, rank: usize) -> u64 {
    seed ^ (rank as u64).wrapping_mul(0x9e3779b97f4a7c15)
}

impl RankSnapshot {
    /// Serialize to the portable binary format (no checksum/framing — the
    /// store wraps it).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        SNAPSHOT_VERSION.encode_into(&mut out);
        self.pos.stage.encode_into(&mut out);
        self.pos.level.encode_into(&mut out);
        self.pos.round.encode_into(&mut out);
        encode_state(&self.st, &mut out);
        // Cursor, minus the RNG (reconstructed by replay on decode).
        self.cursor.next_round.encode_into(&mut out);
        self.cursor.mdl.encode_into(&mut out);
        self.cursor.nmod.encode_into(&mut out);
        self.cursor.mdl_series.encode_into(&mut out);
        self.cursor.total_moves.encode_into(&mut out);
        self.cursor.inner.encode_into(&mut out);
        self.cursor.quiet_rounds.encode_into(&mut out);
        self.cursor.stalled_syncs.encode_into(&mut out);
        let pairs: Vec<(u32, u64)> = self.delegate_assign.iter().map(|(&d, &m)| (d, m)).collect();
        pairs.encode_into(&mut out);
        self.assign.encode_into(&mut out);
        (self.trace.len() as u64).encode_into(&mut out);
        for t in &self.trace {
            encode_trace(t, &mut out);
        }
        self.prev_mdl.encode_into(&mut out);
        self.level_vertices.encode_into(&mut out);
        out
    }

    /// Decode a snapshot, reconstructing the sweep RNG by replay: reseed
    /// with the stage formula and replay the `next_round` shuffles the
    /// stage performed before the boundary (each shuffle's draw sequence
    /// depends only on the list length, so a scratch copy suffices).
    pub fn decode(bytes: &[u8], run_seed: u64) -> Result<RankSnapshot, WireDecodeError> {
        let mut buf = bytes;
        let version = u32::decode_from(&mut buf)?;
        if version != SNAPSHOT_VERSION {
            return Err(WireDecodeError {
                context: "snapshot version",
            });
        }
        let pos = SnapshotPos {
            stage: u8::decode_from(&mut buf)?,
            level: u32::decode_from(&mut buf)?,
            round: u32::decode_from(&mut buf)?,
        };
        let st = decode_state(&mut buf)?;
        let next_round = usize::decode_from(&mut buf)?;
        let mdl = f64::decode_from(&mut buf)?;
        let nmod = u64::decode_from(&mut buf)?;
        let mdl_series = Vec::decode_from(&mut buf)?;
        let total_moves = u64::decode_from(&mut buf)?;
        let inner = usize::decode_from(&mut buf)?;
        let quiet_rounds = usize::decode_from(&mut buf)?;
        let stalled_syncs = usize::decode_from(&mut buf)?;
        let mut rng = StdRng::seed_from_u64(stage_rng_seed(run_seed, st.rank));
        let mut scratch = st.movable.clone();
        for _ in 0..next_round {
            scratch.shuffle(&mut rng);
        }
        let cursor = StageCursor {
            next_round,
            mdl,
            nmod,
            mdl_series,
            total_moves,
            inner,
            quiet_rounds,
            stalled_syncs,
            rng,
        };
        let pairs: Vec<(u32, u64)> = Vec::decode_from(&mut buf)?;
        let delegate_assign: BTreeMap<u32, u64> = pairs.into_iter().collect();
        let assign = Vec::decode_from(&mut buf)?;
        let ntrace = u64::decode_from(&mut buf)? as usize;
        let mut trace = Vec::with_capacity(ntrace);
        for _ in 0..ntrace {
            trace.push(decode_trace(&mut buf)?);
        }
        let prev_mdl = f64::decode_from(&mut buf)?;
        let level_vertices = usize::decode_from(&mut buf)?;
        if !buf.is_empty() {
            return Err(WireDecodeError {
                context: "snapshot trailing bytes",
            });
        }
        Ok(RankSnapshot {
            pos,
            st,
            cursor,
            delegate_assign,
            assign,
            trace,
            prev_mdl,
            level_vertices,
        })
    }
}

// ---------------------------------------------------------------------
// File-backed store
// ---------------------------------------------------------------------

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    for b in bytes {
        h = (h ^ *b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Durable checkpoint store for multi-process runs: one file per rank and
/// generation under a shared directory, surviving SIGKILLed ranks.
///
/// Write protocol: encode + checksum into `<name>.tmp`, then `rename` into
/// place — readers never observe a torn file. Each rank alternates between
/// two generation slots (`rank-<r>.g0` / `rank-<r>.g1`), so the previous
/// boundary survives until the next-but-one commit. That redundancy is
/// what makes restore after a *real* crash sound: a process killed between
/// the consensus collective and its own commit leaves the world split
/// across two boundaries, and [`SnapshotStore::agreed_pos`] picks the
/// newest boundary every rank still holds.
pub struct FileCheckpointStore {
    dir: PathBuf,
    nranks: usize,
    /// The run seed, needed to rebuild cursors' RNGs on decode.
    run_seed: u64,
    /// Next generation slot per rank.
    next_gen: Vec<Mutex<u8>>,
    commits: AtomicU64,
}

const CKPT_MAGIC: &[u8; 8] = b"DINFCKPT";

impl FileCheckpointStore {
    /// Open (creating the directory if needed). Existing snapshot files
    /// are kept — that is the point: a relaunched world resumes from them.
    /// For each rank, the next commit targets the slot NOT holding the
    /// newest existing snapshot, so a relaunch keeps overwriting the older
    /// generation.
    pub fn open(
        dir: impl Into<PathBuf>,
        nranks: usize,
        run_seed: u64,
    ) -> std::io::Result<FileCheckpointStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let store = FileCheckpointStore {
            dir,
            nranks,
            run_seed,
            next_gen: (0..nranks).map(|_| Mutex::new(0)).collect(),
            commits: AtomicU64::new(0),
        };
        for rank in 0..nranks {
            if let Some(&(_, newest_gen)) = store.positions_of(rank).first() {
                *store.next_gen[rank].lock().unwrap() = 1 - newest_gen;
            }
        }
        Ok(store)
    }

    fn slot_path(&self, rank: usize, gen: u8) -> PathBuf {
        self.dir.join(format!("rank-{rank}.g{gen}.ckpt"))
    }

    /// Read one slot file; `None` for missing, unreadable, torn, or
    /// undecodable files (a half-written or damaged slot is equivalent to
    /// an absent checkpoint — the other generation still stands).
    fn read_slot(&self, rank: usize, gen: u8) -> Option<RankSnapshot> {
        let bytes = std::fs::read(self.slot_path(rank, gen)).ok()?;
        let payload = unwrap_checked(&bytes)?;
        RankSnapshot::decode(payload, self.run_seed).ok()
    }

    /// Every committed position of `rank`, newest first.
    fn positions_of(&self, rank: usize) -> Vec<(SnapshotPos, u8)> {
        let mut found = Vec::new();
        for gen in 0..2u8 {
            if let Some(snap) = self.read_slot(rank, gen) {
                found.push((snap.pos, gen));
            }
        }
        found.sort_by_key(|&(pos, _)| std::cmp::Reverse(pos));
        found
    }

    /// Remove every snapshot file (fresh-run hygiene).
    pub fn clear(&self) {
        for rank in 0..self.nranks {
            for gen in 0..2u8 {
                let _ = std::fs::remove_file(self.slot_path(rank, gen));
            }
        }
    }
}

fn wrap_checked(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 24);
    out.extend_from_slice(CKPT_MAGIC);
    (payload.len() as u64).encode_into(&mut out);
    out.extend_from_slice(payload);
    fnv1a(payload).encode_into(&mut out);
    out
}

fn unwrap_checked(bytes: &[u8]) -> Option<&[u8]> {
    if bytes.len() < 24 || &bytes[..8] != CKPT_MAGIC {
        return None;
    }
    let len = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
    if bytes.len() != 24 + len {
        return None;
    }
    let payload = &bytes[16..16 + len];
    let declared = u64::from_le_bytes(bytes[16 + len..].try_into().unwrap());
    if fnv1a(payload) != declared {
        return None;
    }
    Some(payload)
}

impl SnapshotStore for FileCheckpointStore {
    fn commit(&self, rank: usize, snap: &RankSnapshot) {
        let mut gen_guard = self.next_gen[rank].lock().unwrap();
        let gen = *gen_guard;
        let path = self.slot_path(rank, gen);
        let tmp = path.with_extension("ckpt.tmp");
        let bytes = wrap_checked(&snap.encode());
        // A failed write must not destroy the slot's previous contents:
        // write the temp file fully, then rename atomically.
        if std::fs::write(&tmp, &bytes).is_ok() && std::fs::rename(&tmp, &path).is_ok() {
            *gen_guard = 1 - gen;
            self.commits.fetch_add(1, Ordering::SeqCst);
        } else {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    fn agreed_pos(&self) -> Option<SnapshotPos> {
        // Candidate positions: rank 0's snapshots, newest first. A position
        // is agreed when every rank holds it.
        let candidates = self.positions_of(0);
        'cand: for &(pos, _) in &candidates {
            for rank in 1..self.nranks {
                if !self.positions_of(rank).iter().any(|&(p, _)| p == pos) {
                    continue 'cand;
                }
            }
            return Some(pos);
        }
        None
    }

    fn restore_agreed(&self, rank: usize) -> Option<RankSnapshot> {
        let pos = self.agreed_pos()?;
        let (_, gen) = self
            .positions_of(rank)
            .into_iter()
            .find(|&(p, _)| p == pos)?;
        self.read_slot(rank, gen)
    }

    fn checkpoints_committed(&self) -> u64 {
        self.commits.load(Ordering::SeqCst)
    }
}

/// Snapshot files present under `dir` (any rank, any generation) — used by
/// the launcher to decide whether a relaunch can restore.
pub fn checkpoint_files_present(dir: &Path) -> bool {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .flatten()
                .any(|e| e.file_name().to_string_lossy().ends_with(".ckpt"))
        })
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pos_word_orders_like_the_tuple() {
        let a = SnapshotPos {
            stage: 1,
            level: 0,
            round: 4,
        };
        let b = SnapshotPos {
            stage: 1,
            level: 0,
            round: 6,
        };
        let c = SnapshotPos {
            stage: 2,
            level: 1,
            round: 0,
        };
        assert!(a < b && b < c);
        assert!(a.as_word() < b.as_word() && b.as_word() < c.as_word());
    }

    #[test]
    fn empty_store_has_no_position() {
        let store = CheckpointStore::new(3);
        assert!(store.latest_pos().is_none());
        assert!(store.restore(1).is_none());
        assert_eq!(store.checkpoints_committed(), 0);
    }

    use crate::state::build_stage1_states;
    use infomap_graph::generators;
    use infomap_partition::Partition;
    use rand::RngCore;

    const TEST_SEED: u64 = 42;

    /// A realistic snapshot: a stage-1 state with populated maps, plus a
    /// cursor whose RNG has advanced `rounds` shuffles past its seed.
    fn sample_snapshot(rounds: usize) -> RankSnapshot {
        let (g, _) = generators::lfr_like(
            generators::LfrParams {
                n: 120,
                ..Default::default()
            },
            7,
        );
        let part =
            Partition::delegate(&g, 3, infomap_partition::DelegateThreshold::Auto(4.0), true);
        let mut st = build_stage1_states(&g, &part).remove(1);
        st.owned_modules.insert(
            17,
            ModuleEntry {
                flow: 0.25,
                exit: 0.125,
                members: 3,
            },
        );
        st.owner_sources.insert((17, 2), (0.1, 0.05, 1));
        st.owner_subs.insert(17, vec![0, 2]);
        let mut rng = StdRng::seed_from_u64(stage_rng_seed(TEST_SEED, st.rank));
        let mut scratch = st.movable.clone();
        for _ in 0..rounds {
            scratch.shuffle(&mut rng);
        }
        RankSnapshot {
            pos: SnapshotPos {
                stage: 1,
                level: 0,
                round: rounds as u32,
            },
            st,
            cursor: StageCursor {
                next_round: rounds,
                mdl: 5.25,
                nmod: 40,
                mdl_series: vec![6.0, 5.5, 5.25],
                total_moves: 99,
                inner: rounds,
                quiet_rounds: 1,
                stalled_syncs: 0,
                rng,
            },
            delegate_assign: [(3u32, 8u64), (9, 9)].into_iter().collect(),
            assign: vec![(0, 1), (5, 2)],
            trace: vec![StageTrace {
                stage: 1,
                level: 0,
                codelength: 5.25,
                num_modules: 40,
                vertices_before: 120,
                vertices_after: 40,
                inner_iterations: rounds,
                moves: 99,
                mdl_series: vec![6.0, 5.25],
            }],
            prev_mdl: 6.0,
            level_vertices: 40,
        }
    }

    #[test]
    fn snapshot_roundtrips_bit_identically() {
        let snap = sample_snapshot(4);
        let bytes = snap.encode();
        let back = RankSnapshot::decode(&bytes, TEST_SEED).expect("decode");
        // Re-encoding the decoded snapshot must reproduce the exact bytes
        // (maps are serialized sorted, floats as bit patterns).
        assert_eq!(back.encode(), bytes);
        assert_eq!(back.pos, snap.pos);
        assert_eq!(back.assign, snap.assign);
        assert_eq!(back.delegate_assign, snap.delegate_assign);
        assert_eq!(back.trace, snap.trace);
        assert_eq!(back.st.module_of, snap.st.module_of);
        assert_eq!(back.st.index, snap.st.index);
        assert_eq!(back.st.module_slot, snap.st.module_slot);
        assert_eq!(back.st.owned_modules, snap.st.owned_modules);
        assert_eq!(back.st.owner_sources, snap.st.owner_sources);
    }

    #[test]
    fn decoded_rng_continues_the_original_stream() {
        let snap = sample_snapshot(6);
        let mut original = snap.cursor.rng.clone();
        let bytes = snap.encode();
        let mut back = RankSnapshot::decode(&bytes, TEST_SEED).expect("decode");
        // The replayed generator must produce the identical continuation.
        for _ in 0..16 {
            assert_eq!(back.cursor.rng.next_u64(), original.next_u64());
        }
    }

    #[test]
    fn corrupt_snapshot_bytes_are_rejected() {
        let snap = sample_snapshot(2);
        let bytes = snap.encode();
        assert!(RankSnapshot::decode(&bytes[..bytes.len() - 3], TEST_SEED).is_err());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(RankSnapshot::decode(&extra, TEST_SEED).is_err());
        let mut wrong_version = bytes;
        wrong_version[0] ^= 0xff;
        assert!(RankSnapshot::decode(&wrong_version, TEST_SEED).is_err());
    }

    fn temp_store_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dinf-ckpt-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn file_store_roundtrips_and_agrees() {
        let dir = temp_store_dir("roundtrip");
        let store = FileCheckpointStore::open(&dir, 2, TEST_SEED).unwrap();
        let snap = sample_snapshot(3);
        SnapshotStore::commit(&store, 0, &snap);
        SnapshotStore::commit(&store, 1, &snap);
        assert_eq!(store.agreed_pos(), Some(snap.pos));
        let back = store.restore_agreed(1).expect("restore");
        assert_eq!(back.encode(), snap.encode());
        assert_eq!(SnapshotStore::checkpoints_committed(&store), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn split_commit_falls_back_to_previous_generation() {
        let dir = temp_store_dir("split");
        let store = FileCheckpointStore::open(&dir, 2, TEST_SEED).unwrap();
        let older = sample_snapshot(2);
        let newer = sample_snapshot(4);
        // Both ranks commit boundary A; only rank 0 reaches boundary B
        // before the (simulated) crash.
        SnapshotStore::commit(&store, 0, &older);
        SnapshotStore::commit(&store, 1, &older);
        SnapshotStore::commit(&store, 0, &newer);
        // The agreed boundary is the older one — the only one both hold.
        assert_eq!(store.agreed_pos(), Some(older.pos));
        let r0 = store.restore_agreed(0).expect("rank 0 fallback");
        assert_eq!(r0.pos, older.pos);
        assert_eq!(r0.encode(), older.encode());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopened_store_resumes_and_overwrites_oldest() {
        let dir = temp_store_dir("reopen");
        let a = sample_snapshot(1);
        let b = sample_snapshot(2);
        let c = sample_snapshot(3);
        {
            let store = FileCheckpointStore::open(&dir, 1, TEST_SEED).unwrap();
            SnapshotStore::commit(&store, 0, &a);
            SnapshotStore::commit(&store, 0, &b);
        }
        // A fresh process (relaunch) opens the same directory: it must see
        // the newest boundary, and its next commit must overwrite the
        // oldest generation, preserving b.
        let store = FileCheckpointStore::open(&dir, 1, TEST_SEED).unwrap();
        assert_eq!(store.agreed_pos(), Some(b.pos));
        SnapshotStore::commit(&store, 0, &c);
        assert_eq!(store.agreed_pos(), Some(c.pos));
        let positions: Vec<SnapshotPos> =
            store.positions_of(0).into_iter().map(|(p, _)| p).collect();
        assert!(positions.contains(&b.pos), "b was clobbered: {positions:?}");
        assert!(positions.contains(&c.pos));
        assert!(checkpoint_files_present(&dir));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_file_reads_as_absent() {
        let dir = temp_store_dir("torn");
        let store = FileCheckpointStore::open(&dir, 1, TEST_SEED).unwrap();
        let snap = sample_snapshot(2);
        SnapshotStore::commit(&store, 0, &snap);
        // Truncate the committed file, as a crash mid-write (without the
        // atomic rename) would.
        let path = dir.join("rank-0.g0.ckpt");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert_eq!(store.agreed_pos(), None);
        assert!(store.restore_agreed(0).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
