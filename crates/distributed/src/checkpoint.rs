//! Round-boundary checkpointing of the distributed clustering state.
//!
//! A checkpoint is everything a rank needs to resume the algorithm from a
//! committed round boundary: its [`LocalState`] (module assignments and
//! statistics, delta-sync bookkeeping), the stage cursor (round number,
//! MDL trajectory, mid-stream RNG), the delegate assignment, and the
//! driver-level carry (original-vertex assignments, stage trace, previous
//! MDL). Restoring a snapshot and replaying the remaining rounds is
//! bit-identical to the uninterrupted run, because the RNG resumes exactly
//! where it was captured.
//!
//! Consistency is by construction, not by protocol: commits only happen
//! immediately after a consensus collective with no communication event in
//! between (see `cluster_stage_recoverable`), and injected crashes only
//! fire at communication-event boundaries — so either every rank committed
//! a boundary or none did, and [`CheckpointStore::latest_pos`] can insist
//! on global agreement.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::driver::StageTrace;
use crate::rounds::StageCursor;
use crate::state::LocalState;

/// Global position of a snapshot: which stage, merge level and round the
/// checkpointed boundary belongs to. Identical on every rank of a
/// committed checkpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct SnapshotPos {
    /// 1 = stage-1 clustering (with delegates), 2 = stage-2.
    pub stage: u8,
    /// Merge level (0 for stage 1).
    pub level: u32,
    /// The next round the resumed stage will execute.
    pub round: u32,
}

impl SnapshotPos {
    /// Pack into one word for cheap consensus collectives.
    pub fn as_word(&self) -> u64 {
        ((self.stage as u64) << 48) | ((self.level as u64) << 16) | self.round as u64
    }
}

/// One rank's checkpoint.
#[derive(Clone, Debug)]
pub struct RankSnapshot {
    pub pos: SnapshotPos,
    /// The clustering state of the current level.
    pub st: LocalState,
    /// Mid-stage cursor to resume `cluster_stage_recoverable` from.
    pub cursor: StageCursor,
    /// Delegate (stage 1) assignment map at the boundary.
    pub delegate_assign: BTreeMap<u32, u64>,
    /// Original-vertex assignments carried by the driver (empty during
    /// stage 1, where they are derived at the first merge).
    pub assign: Vec<(u32, u32)>,
    /// Stage trace accumulated so far.
    pub trace: Vec<StageTrace>,
    /// MDL of the last completed stage (driver carry).
    pub prev_mdl: f64,
    /// Vertex count of the current level graph (driver carry).
    pub level_vertices: usize,
}

impl RankSnapshot {
    /// Approximate bytes a serialized checkpoint would occupy — the
    /// evolving clustering data, not the level topology (which is
    /// reconstructible from the partitioned input). Used to meter
    /// checkpoint writes/reads for the cost model.
    pub fn approx_wire_bytes(&self) -> u64 {
        let st = &self.st;
        let assignments = st.module_of.len() as u64 * 8;
        // Module tables: id (8) + flow/exit (16) + members (4). Only
        // modules this rank has a live view of would be serialized — the
        // interned slot tables are rebuilt on restore.
        let tables = (st.num_known_modules() + st.owned_modules.len()) as u64 * 28;
        let delta_bookkeeping = (st.num_active_contribs() + st.owner_sources.len()) as u64 * 28;
        let delegate = self.delegate_assign.len() as u64 * 12;
        let carry = self.assign.len() as u64 * 8 + self.cursor.mdl_series.len() as u64 * 8;
        assignments + tables + delta_bookkeeping + delegate + carry + 64
    }
}

/// In-memory stand-in for the checkpoint storage of a real deployment
/// (burst buffer / parallel FS): one slot per rank, written behind the
/// stage's consensus collective and read back at the start of a retry.
#[derive(Debug)]
pub struct CheckpointStore {
    slots: Vec<Mutex<Option<RankSnapshot>>>,
    commits: AtomicU64,
}

impl CheckpointStore {
    pub fn new(nranks: usize) -> Self {
        CheckpointStore {
            slots: (0..nranks).map(|_| Mutex::new(None)).collect(),
            commits: AtomicU64::new(0),
        }
    }

    /// Commit `rank`'s snapshot, replacing any older one.
    pub fn commit(&self, rank: usize, snap: RankSnapshot) {
        *self.slots[rank].lock().unwrap() = Some(snap);
        self.commits.fetch_add(1, Ordering::SeqCst);
    }

    /// The globally agreed checkpoint position, if any checkpoint was
    /// committed. Panics if ranks disagree — the commit protocol makes
    /// that impossible, so disagreement is a bug, not a recoverable state.
    pub fn latest_pos(&self) -> Option<SnapshotPos> {
        let mut pos: Option<SnapshotPos> = None;
        for (rank, slot) in self.slots.iter().enumerate() {
            let guard = slot.lock().unwrap();
            match (&*guard, pos) {
                (None, None) => {}
                (Some(s), None) if rank == 0 => pos = Some(s.pos),
                (Some(s), Some(p)) => {
                    assert_eq!(s.pos, p, "rank {rank} checkpointed a different boundary");
                }
                _ => panic!("checkpoint store is inconsistent: rank {rank} differs"),
            }
        }
        pos
    }

    /// A clone of `rank`'s latest snapshot.
    pub fn restore(&self, rank: usize) -> Option<RankSnapshot> {
        self.slots[rank].lock().unwrap().clone()
    }

    /// Total rank-snapshot commits over the store's lifetime.
    pub fn checkpoints_committed(&self) -> u64 {
        self.commits.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pos_word_orders_like_the_tuple() {
        let a = SnapshotPos {
            stage: 1,
            level: 0,
            round: 4,
        };
        let b = SnapshotPos {
            stage: 1,
            level: 0,
            round: 6,
        };
        let c = SnapshotPos {
            stage: 2,
            level: 1,
            round: 0,
        };
        assert!(a < b && b < c);
        assert!(a.as_word() < b.as_word() && b.as_word() < c.as_word());
    }

    #[test]
    fn empty_store_has_no_position() {
        let store = CheckpointStore::new(3);
        assert!(store.latest_pos().is_none());
        assert!(store.restore(1).is_none());
        assert_eq!(store.checkpoints_committed(), 0);
    }
}
