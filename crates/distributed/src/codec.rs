//! Compact wire codecs for the [`crate::CommPath::Compact`] path
//! (DESIGN.md §6.13).
//!
//! Every batch the distributed algorithm exchanges is a `Vec` of records
//! whose integer fields are small and strongly clustered: module and
//! vertex IDs within one bucket are near each other (the senders sort
//! buckets by ID), member counts are tiny, and flags are booleans. The
//! codecs here exploit that with three primitives —
//!
//! * **LEB128 unsigned varints** for counts and magnitudes,
//! * **zigzag deltas** between consecutive IDs of the same field stream
//!   (sorted buckets make most deltas one byte),
//! * **bit-packed flag bitmaps** hoisted in front of the records,
//!
//! while every `f64` travels as its raw 8 little-endian bytes. Floats are
//! never transformed, rounded or delta-encoded: the compact path must
//! drive the clustering through the bit-identical trajectory of the
//! legacy path, so the payloads that feed δL arithmetic and MDL sums have
//! to arrive with the exact bits they left with. Decoding mirrors
//! encoding exactly; `decode(encode(batch)) == batch` holds for
//! *arbitrary* batches — including NaN payloads and unsorted IDs — which
//! the proptests in `tests/proptests.rs` exercise.
//!
//! The one stateful codec is [`encode_proposals`]: a proposal's
//! `target_info` is omitted when an earlier proposal in the same batch
//! already carried the *bit-identical* info for the same target module
//! (the known-modules filter of Algorithm 3 applied to the election
//! path). The filter compares all fields by bits rather than assuming
//! "same module ⇒ same info" because module statistics mutate during the
//! greedy sweep that emits the proposals — two proposals for one module
//! may legitimately carry different snapshots, and both must survive the
//! roundtrip exactly.

use std::collections::HashMap;

use crate::messages::{DelegateProposal, ModuleContribution, ModuleInfoMsg, VertexUpdate};

// ---------------------------------------------------------------------------
// Primitives.
// ---------------------------------------------------------------------------

/// Append `v` as a LEB128 unsigned varint (1–10 bytes).
pub fn put_uvarint(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

/// Read a LEB128 unsigned varint at `*pos`, advancing it.
pub fn get_uvarint(buf: &[u8], pos: &mut usize) -> u64 {
    let mut v: u64 = 0;
    let mut shift = 0;
    loop {
        let b = buf[*pos];
        *pos += 1;
        v |= ((b & 0x7f) as u64) << shift;
        if b < 0x80 {
            return v;
        }
        shift += 7;
    }
}

/// Map a signed value onto an unsigned one with small magnitudes first
/// (0, -1, 1, -2, … → 0, 1, 2, 3, …).
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Append `cur` as a zigzag delta from `prev` (wrapping, so arbitrary
/// u64 pairs — sorted or not — roundtrip).
fn put_delta(buf: &mut Vec<u8>, prev: u64, cur: u64) {
    put_uvarint(buf, zigzag(cur.wrapping_sub(prev) as i64));
}

/// Read a zigzag delta and apply it to `prev`.
fn get_delta(buf: &[u8], pos: &mut usize, prev: u64) -> u64 {
    prev.wrapping_add(unzigzag(get_uvarint(buf, pos)) as u64)
}

/// Append the raw bits of `v` (8 bytes, little-endian). Bit-exact for
/// every payload including NaNs and signed zeros.
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Read 8 little-endian bytes back into an `f64`, bit-exactly.
pub fn get_f64(buf: &[u8], pos: &mut usize) -> f64 {
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&buf[*pos..*pos + 8]);
    *pos += 8;
    f64::from_bits(u64::from_le_bytes(raw))
}

/// Append `bits` packed 8-per-byte, LSB first (⌈n/8⌉ bytes; the length
/// travels separately as the batch count).
fn put_bitmap(buf: &mut Vec<u8>, bits: &[bool]) {
    for chunk in bits.chunks(8) {
        let mut b = 0u8;
        for (i, &bit) in chunk.iter().enumerate() {
            b |= (bit as u8) << i;
        }
        buf.push(b);
    }
}

/// Read `n` bits packed by [`put_bitmap`].
fn get_bitmap(buf: &[u8], pos: &mut usize, n: usize) -> Vec<bool> {
    let nbytes = n.div_ceil(8);
    let mut bits = Vec::with_capacity(n);
    for i in 0..n {
        bits.push(buf[*pos + i / 8] >> (i % 8) & 1 == 1);
    }
    *pos += nbytes;
    bits
}

// ---------------------------------------------------------------------------
// Batch codecs. Encoders append to `buf` (so several batches fuse into one
// packet); decoders advance `pos` symmetrically.
// ---------------------------------------------------------------------------

/// Boundary community-ID updates: count, then per record a zigzag-delta
/// vertex and a zigzag-delta module (each field delta-chained against its
/// own predecessor).
pub fn encode_updates(buf: &mut Vec<u8>, updates: &[VertexUpdate]) {
    put_uvarint(buf, updates.len() as u64);
    let (mut pv, mut pm) = (0u64, 0u64);
    for u in updates {
        put_delta(buf, pv, u.vertex as u64);
        put_delta(buf, pm, u.module);
        pv = u.vertex as u64;
        pm = u.module;
    }
}

/// Inverse of [`encode_updates`].
pub fn decode_updates(buf: &[u8], pos: &mut usize) -> Vec<VertexUpdate> {
    let n = get_uvarint(buf, pos) as usize;
    let (mut pv, mut pm) = (0u64, 0u64);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        pv = get_delta(buf, pos, pv);
        pm = get_delta(buf, pos, pm);
        out.push(VertexUpdate {
            vertex: pv as u32,
            module: pm,
        });
    }
    out
}

/// Full `Module_Info` records (List 1): count, `is_sent` bitmap, then per
/// record a zigzag-delta module ID, the raw flow/exit doubles and a
/// varint member count.
pub fn encode_infos(buf: &mut Vec<u8>, infos: &[ModuleInfoMsg]) {
    put_uvarint(buf, infos.len() as u64);
    let sent: Vec<bool> = infos.iter().map(|m| m.is_sent).collect();
    put_bitmap(buf, &sent);
    let mut pm = 0u64;
    for m in infos {
        put_delta(buf, pm, m.mod_id);
        pm = m.mod_id;
        put_f64(buf, m.flow);
        put_f64(buf, m.exit);
        put_uvarint(buf, m.members as u64);
    }
}

/// Inverse of [`encode_infos`].
pub fn decode_infos(buf: &[u8], pos: &mut usize) -> Vec<ModuleInfoMsg> {
    let n = get_uvarint(buf, pos) as usize;
    let sent = get_bitmap(buf, pos, n);
    let mut pm = 0u64;
    let mut out = Vec::with_capacity(n);
    for &is_sent in sent.iter().take(n) {
        pm = get_delta(buf, pos, pm);
        let flow = get_f64(buf, pos);
        let exit = get_f64(buf, pos);
        let members = get_uvarint(buf, pos) as u32;
        out.push(ModuleInfoMsg {
            mod_id: pm,
            flow,
            exit,
            members,
            is_sent,
        });
    }
    out
}

/// Owner-reduction contributions: count, `retract` bitmap, zero-payload
/// bitmap, then per record a zigzag-delta module ID and — unless the
/// payload is exactly (+0.0, +0.0, 0), the shape of every retract and
/// pure-subscription record — the raw doubles and varint member count.
pub fn encode_contribs(buf: &mut Vec<u8>, recs: &[ModuleContribution]) {
    put_uvarint(buf, recs.len() as u64);
    let retract: Vec<bool> = recs.iter().map(|r| r.retract).collect();
    put_bitmap(buf, &retract);
    let zero: Vec<bool> = recs
        .iter()
        .map(|r| r.flow.to_bits() == 0 && r.exit.to_bits() == 0 && r.members == 0)
        .collect();
    put_bitmap(buf, &zero);
    let mut pm = 0u64;
    for (r, &z) in recs.iter().zip(&zero) {
        put_delta(buf, pm, r.mod_id);
        pm = r.mod_id;
        if !z {
            put_f64(buf, r.flow);
            put_f64(buf, r.exit);
            put_uvarint(buf, r.members as u64);
        }
    }
}

/// Inverse of [`encode_contribs`].
pub fn decode_contribs(buf: &[u8], pos: &mut usize) -> Vec<ModuleContribution> {
    let n = get_uvarint(buf, pos) as usize;
    let retract = get_bitmap(buf, pos, n);
    let zero = get_bitmap(buf, pos, n);
    let mut pm = 0u64;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        pm = get_delta(buf, pos, pm);
        let (flow, exit, members) = if zero[i] {
            (0.0, 0.0, 0)
        } else {
            let flow = get_f64(buf, pos);
            let exit = get_f64(buf, pos);
            (flow, exit, get_uvarint(buf, pos) as u32)
        };
        out.push(ModuleContribution {
            mod_id: pm,
            flow,
            exit,
            members,
            retract: retract[i],
        });
    }
    out
}

/// Delegate-election proposals: count, `has_info` bitmap, then per record
/// zigzag-delta delegate and target module IDs, the raw δL double and a
/// varint proposer. When `has_info` is set the target's `Module_Info`
/// follows — its module ID as a zigzag delta *from the target module*
/// (normally zero), raw doubles, varint members and the `is_sent` byte.
///
/// `has_info` is cleared only when an earlier proposal in the batch
/// carried the bit-identical info for the same target module — the
/// known-modules filter. The decoder replays the same cache, so omitted
/// infos are reconstructed exactly.
pub fn encode_proposals(buf: &mut Vec<u8>, props: &[DelegateProposal]) {
    put_uvarint(buf, props.len() as u64);
    let mut cache: HashMap<u64, ModuleInfoMsg> = HashMap::new();
    let has_info: Vec<bool> = props
        .iter()
        .map(|p| {
            let dup = cache
                .get(&p.to_module)
                .is_some_and(|c| bits_eq(c, &p.target_info));
            if !dup {
                cache.insert(p.to_module, p.target_info);
            }
            !dup
        })
        .collect();
    put_bitmap(buf, &has_info);
    let (mut pd, mut pm) = (0u64, 0u64);
    for (p, &carry) in props.iter().zip(&has_info) {
        put_delta(buf, pd, p.delegate as u64);
        put_delta(buf, pm, p.to_module);
        pd = p.delegate as u64;
        pm = p.to_module;
        put_f64(buf, p.delta);
        put_uvarint(buf, p.proposer as u64);
        if carry {
            let t = &p.target_info;
            put_delta(buf, p.to_module, t.mod_id);
            put_f64(buf, t.flow);
            put_f64(buf, t.exit);
            put_uvarint(buf, t.members as u64);
            buf.push(t.is_sent as u8);
        }
    }
}

/// Inverse of [`encode_proposals`].
pub fn decode_proposals(buf: &[u8], pos: &mut usize) -> Vec<DelegateProposal> {
    let n = get_uvarint(buf, pos) as usize;
    let has_info = get_bitmap(buf, pos, n);
    let mut cache: HashMap<u64, ModuleInfoMsg> = HashMap::new();
    let (mut pd, mut pm) = (0u64, 0u64);
    let mut out = Vec::with_capacity(n);
    for &carry in has_info.iter().take(n) {
        pd = get_delta(buf, pos, pd);
        pm = get_delta(buf, pos, pm);
        let delta = get_f64(buf, pos);
        let proposer = get_uvarint(buf, pos) as u32;
        let target_info = if carry {
            let mod_id = get_delta(buf, pos, pm);
            let flow = get_f64(buf, pos);
            let exit = get_f64(buf, pos);
            let members = get_uvarint(buf, pos) as u32;
            let is_sent = buf[*pos] != 0;
            *pos += 1;
            let info = ModuleInfoMsg {
                mod_id,
                flow,
                exit,
                members,
                is_sent,
            };
            cache.insert(pm, info);
            info
        } else {
            cache[&pm]
        };
        out.push(DelegateProposal {
            delegate: pd as u32,
            to_module: pm,
            delta,
            proposer,
            target_info,
        });
    }
    out
}

/// `(u32, u32)` pairs (assignment migration): count, then per record a
/// zigzag delta of each component against its own predecessor.
pub fn encode_pairs(buf: &mut Vec<u8>, pairs: &[(u32, u32)]) {
    put_uvarint(buf, pairs.len() as u64);
    let (mut pa, mut pb) = (0u64, 0u64);
    for &(a, b) in pairs {
        put_delta(buf, pa, a as u64);
        put_delta(buf, pb, b as u64);
        pa = a as u64;
        pb = b as u64;
    }
}

/// Inverse of [`encode_pairs`].
pub fn decode_pairs(buf: &[u8], pos: &mut usize) -> Vec<(u32, u32)> {
    let n = get_uvarint(buf, pos) as usize;
    let (mut pa, mut pb) = (0u64, 0u64);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        pa = get_delta(buf, pos, pa);
        pb = get_delta(buf, pos, pb);
        out.push((pa as u32, pb as u32));
    }
    out
}

/// All fields bit-equal (floats compared by bits so NaN == NaN and
/// +0.0 ≠ -0.0 — the cache must never merge records a bit-exact
/// roundtrip could tell apart).
fn bits_eq(a: &ModuleInfoMsg, b: &ModuleInfoMsg) -> bool {
    a.mod_id == b.mod_id
        && a.flow.to_bits() == b.flow.to_bits()
        && a.exit.to_bits() == b.exit.to_bits()
        && a.members == b.members
        && a.is_sent == b.is_sent
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(mod_id: u64, flow: f64, members: u32, is_sent: bool) -> ModuleInfoMsg {
        ModuleInfoMsg {
            mod_id,
            flow,
            exit: flow * 0.25,
            members,
            is_sent,
        }
    }

    #[test]
    fn uvarint_roundtrips_edge_values() {
        for v in [
            0,
            1,
            127,
            128,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_uvarint(&buf, &mut pos), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn zigzag_is_involutive_and_small_first() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, 42, -12345] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn f64_roundtrips_bit_patterns() {
        for v in [
            0.0,
            -0.0,
            1.5,
            f64::NAN,
            f64::INFINITY,
            f64::MIN_POSITIVE,
            1e-300,
        ] {
            let mut buf = Vec::new();
            put_f64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_f64(&buf, &mut pos).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn updates_roundtrip_and_compress_sorted_ids() {
        let ups: Vec<VertexUpdate> = (0..100)
            .map(|i| VertexUpdate {
                vertex: 1000 + i,
                module: 500 + i as u64,
            })
            .collect();
        let mut buf = Vec::new();
        encode_updates(&mut buf, &ups);
        // Two varint bytes for the first record's deltas is the worst case
        // here; consecutive IDs then cost 1 byte per field.
        assert!(buf.len() as u64 <= 8 + 2 * ups.len() as u64);
        let mut pos = 0;
        assert_eq!(decode_updates(&buf, &mut pos), ups);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn infos_roundtrip_below_packed_size() {
        let infos: Vec<ModuleInfoMsg> = (0..50)
            .map(|i| info(40 + i, 0.01 * i as f64, i as u32 % 7, i % 3 == 0))
            .collect();
        let mut buf = Vec::new();
        encode_infos(&mut buf, &infos);
        assert!((buf.len() as u64) < infos.len() as u64 * ModuleInfoMsg::WIRE_BYTES);
        let mut pos = 0;
        assert_eq!(decode_infos(&buf, &mut pos), infos);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn contribs_omit_retract_payloads() {
        let recs = vec![
            ModuleContribution {
                mod_id: 9,
                flow: 0.5,
                exit: 0.1,
                members: 3,
                retract: false,
            },
            ModuleContribution {
                mod_id: 11,
                flow: 0.0,
                exit: 0.0,
                members: 0,
                retract: true,
            },
            ModuleContribution {
                mod_id: 12,
                flow: -0.0,
                exit: 0.0,
                members: 0,
                retract: false,
            },
        ];
        let mut buf = Vec::new();
        encode_contribs(&mut buf, &recs);
        let mut pos = 0;
        let back = decode_contribs(&buf, &mut pos);
        assert_eq!(back, recs);
        // The -0.0 record must keep its payload (sign bit is information).
        assert_eq!(back[2].flow.to_bits(), (-0.0f64).to_bits());
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn proposals_roundtrip_with_info_dedup() {
        let a = info(7, 0.25, 4, false);
        let a_mut = info(7, 0.26, 5, false); // stats mutated mid-sweep
        let props = vec![
            DelegateProposal {
                delegate: 3,
                to_module: 7,
                delta: -0.1,
                proposer: 1,
                target_info: a,
            },
            DelegateProposal {
                delegate: 5,
                to_module: 7,
                delta: -0.2,
                proposer: 1,
                target_info: a,
            },
            DelegateProposal {
                delegate: 8,
                to_module: 7,
                delta: -0.3,
                proposer: 1,
                target_info: a_mut,
            },
            DelegateProposal {
                delegate: 9,
                to_module: 9,
                delta: 0.4,
                proposer: 2,
                target_info: a,
            },
        ];
        let mut buf = Vec::new();
        encode_proposals(&mut buf, &props);
        let mut pos = 0;
        assert_eq!(decode_proposals(&buf, &mut pos), props);
        assert_eq!(pos, buf.len());
        // One duplicate info elided: well under 4 packed proposals.
        assert!((buf.len() as u64) < props.len() as u64 * DelegateProposal::WIRE_BYTES);
        // The second proposal's identical info must have been elided; an
        // encoding that carried all four infos would be at least 25 bytes
        // larger (info payload ≥ 8+8+1+1+1 bytes).
        let mut full = Vec::new();
        let distinct: Vec<DelegateProposal> = props
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let mut q = *p;
                q.target_info.members = 100 + i as u32; // defeat the cache
                q
            })
            .collect();
        encode_proposals(&mut full, &distinct);
        assert!(full.len() > buf.len());
    }

    #[test]
    fn pairs_roundtrip() {
        let pairs: Vec<(u32, u32)> = (0..64).map(|i| (i * 3, 1000 - i)).collect();
        let mut buf = Vec::new();
        encode_pairs(&mut buf, &pairs);
        let mut pos = 0;
        assert_eq!(decode_pairs(&buf, &mut pos), pairs);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn batches_fuse_in_one_packet() {
        let ups = vec![VertexUpdate {
            vertex: 4,
            module: 2,
        }];
        let infos = vec![info(2, 0.5, 2, false)];
        let mut buf = Vec::new();
        encode_updates(&mut buf, &ups);
        encode_infos(&mut buf, &infos);
        let mut pos = 0;
        assert_eq!(decode_updates(&buf, &mut pos), ups);
        assert_eq!(decode_infos(&buf, &mut pos), infos);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn empty_batches_cost_one_count_byte() {
        let mut buf = Vec::new();
        encode_updates(&mut buf, &[]);
        encode_infos(&mut buf, &[]);
        encode_contribs(&mut buf, &[]);
        encode_proposals(&mut buf, &[]);
        encode_pairs(&mut buf, &[]);
        assert_eq!(buf.len(), 5);
        let mut pos = 0;
        assert!(decode_updates(&buf, &mut pos).is_empty());
        assert!(decode_infos(&buf, &mut pos).is_empty());
        assert!(decode_contribs(&buf, &mut pos).is_empty());
        assert!(decode_proposals(&buf, &mut pos).is_empty());
        assert!(decode_pairs(&buf, &mut pos).is_empty());
        assert_eq!(pos, buf.len());
    }
}
