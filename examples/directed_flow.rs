//! Directed community detection: the paper's §2.2 notes Infomap applies
//! to directed graphs as well; this example runs the directed map
//! equation over PageRank flows on a citation-style network where
//! direction matters.
//!
//! ```text
//! cargo run --release --example directed_flow
//! ```

use infomap_core::directed::{directed_infomap, DirectedNetwork, PageRankConfig};
use rand::prelude::*;
use rand::rngs::StdRng;

fn main() {
    // Three "research fields": dense citation cycles inside each field,
    // sparse one-way citations from newer fields to older ones.
    let mut rng = StdRng::seed_from_u64(7);
    let field_size = 40u32;
    let fields = 3u32;
    let n = (field_size * fields) as usize;
    let mut edges: Vec<(u32, u32, f64)> = Vec::new();
    for f in 0..fields {
        let base = f * field_size;
        for i in 0..field_size {
            // Everyone cites a handful of random papers in their field.
            for _ in 0..4 {
                let j = rng.gen_range(0..field_size);
                if i != j {
                    edges.push((base + i, base + j, 1.0));
                }
            }
        }
    }
    // One-way inter-field citations (field k cites field k-1).
    for f in 1..fields {
        for _ in 0..6 {
            let src = f * field_size + rng.gen_range(0..field_size);
            let dst = (f - 1) * field_size + rng.gen_range(0..field_size);
            edges.push((src, dst, 1.0));
        }
    }

    let net = DirectedNetwork::from_edges(n, &edges, PageRankConfig::default());
    let result = directed_infomap(&net, 0);
    let k = result.modules.iter().copied().max().unwrap() + 1;
    println!(
        "directed citation network: {n} vertices, {} arcs",
        edges.len()
    );
    println!(
        "detected {k} modules, codelength {:.4} bits (one-level {:.4})",
        result.codelength, result.one_level_codelength
    );

    // How well do modules match the planted fields?
    let truth: Vec<u32> = (0..n as u32).map(|v| v / field_size).collect();
    let q = infomap_metrics::quality(&truth, &result.modules);
    println!(
        "agreement with the planted fields: NMI {:.2}, F {:.2}, Jaccard {:.2}",
        q.nmi, q.f_measure, q.jaccard
    );

    // Flow concentrates downstream: oldest field holds the most PageRank.
    for f in 0..fields {
        let mass: f64 = (f * field_size..(f + 1) * field_size)
            .map(|u| net.node_flow(u))
            .sum();
        println!("field {f}: {:.1}% of the visit flow", mass * 100.0);
    }
}
