//! Partitioning analysis: why hubs break 1D partitioning and how vertex
//! delegates fix it (the paper's §2.3/§3.3 story on one graph).
//!
//! ```text
//! cargo run --release --example partitioning_analysis
//! ```

use distributed_infomap::prelude::*;

fn print_stats(label: &str, loads: &[usize]) {
    let s = BalanceStats::from_loads(loads);
    println!(
        "  {label:<22} min {:>7}  median {:>7}  max {:>7}  max/mean {:>5.2}",
        s.min, s.median, s.max, s.imbalance
    );
}

fn main() {
    let p = 64;
    // A scale-free graph with a few monster hubs (Chung–Lu over a
    // power-law degree sequence with exponent 2.0).
    let degrees = generators::power_law_degrees(40_000, 2.0, 2, 8_000, 1);
    let graph = generators::chung_lu(&degrees, 2);
    println!(
        "scale-free graph: {} vertices, {} edges, max degree {}\n",
        graph.num_vertices(),
        graph.num_edges(),
        graph.max_degree()
    );

    println!("edges per rank (workload proxy), p = {p}:");
    let one_d = Partition::one_d_block(&graph, p);
    print_stats("block 1D", &one_d.edge_counts());
    let rr = Partition::one_d(&graph, p);
    print_stats("round-robin 1D", &rr.edge_counts());
    let plain = Partition::delegate(&graph, p, DelegateThreshold::RankCount, false);
    print_stats("delegate, no rebalance", &plain.edge_counts());
    let full = Partition::delegate(&graph, p, DelegateThreshold::RankCount, true);
    print_stats("delegate + rebalance", &full.edge_counts());

    println!("\nghost vertices per rank (communication proxy):");
    print_stats("block 1D", &one_d.ghost_counts());
    print_stats("round-robin 1D", &rr.ghost_counts());
    print_stats("delegate + rebalance", &full.ghost_counts());

    println!(
        "\ndelegates: {} of {} vertices replicated (threshold d_high = p = {p})",
        full.delegates.len(),
        graph.num_vertices()
    );
    println!(
        "heaviest delegate: degree {}",
        full.delegates
            .iter()
            .map(|&d| graph.degree(d))
            .max()
            .unwrap_or(0)
    );
}
