//! Quickstart: detect communities in a small synthetic social network with
//! both the sequential and the distributed Infomap, and compare them.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use distributed_infomap::prelude::*;

fn main() {
    // A 2,000-vertex LFR benchmark graph: power-law degrees, power-law
    // community sizes, 25% of each vertex's edges leaving its community.
    let (graph, planted) = generators::lfr_like(
        generators::LfrParams {
            n: 2000,
            mu: 0.25,
            ..Default::default()
        },
        7,
    );
    println!(
        "graph: {} vertices, {} edges, max degree {}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.max_degree()
    );

    // Sequential Infomap (the reference).
    let seq = Infomap::new(InfomapConfig::default()).run(&graph);
    println!(
        "sequential:  {} modules, codelength {:.4} bits (one-level {:.4})",
        seq.num_modules(),
        seq.codelength,
        seq.one_level_codelength
    );

    // Distributed Infomap on a simulated 8-rank cluster.
    let dist = DistributedInfomap::new(DistributedConfig {
        nranks: 8,
        ..Default::default()
    })
    .run(&graph);
    println!(
        "distributed: {} modules, codelength {:.4} bits on {} ranks",
        dist.num_modules(),
        dist.codelength,
        dist.nranks
    );

    // How well do the three partitions agree?
    let vs_seq = quality(&seq.modules, &dist.modules);
    let vs_truth = quality(&planted, &dist.modules);
    println!(
        "distributed vs sequential: NMI {:.3}, F {:.3}, Jaccard {:.3}",
        vs_seq.nmi, vs_seq.f_measure, vs_seq.jaccard
    );
    println!(
        "distributed vs planted:    NMI {:.3}, F {:.3}, Jaccard {:.3}",
        vs_truth.nmi, vs_truth.f_measure, vs_truth.jaccard
    );
    println!(
        "modularity of the distributed partition: {:.3}",
        modularity(&graph, &dist.modules)
    );
}
