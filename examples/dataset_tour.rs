//! Dataset tour: cluster every Table 1 stand-in with the distributed
//! algorithm and report size, runtime model, and quality against the
//! sequential reference.
//!
//! ```text
//! cargo run --release --example dataset_tour            # small scale
//! DINFOMAP_SCALE=0.3 cargo run --release --example dataset_tour
//! ```

use distributed_infomap::prelude::*;

fn main() {
    let scale: f64 = std::env::var("DINFOMAP_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.08);
    let nranks = 8;
    let model = CostModel::default();
    println!(
        "{:<14} {:>8} {:>9} {:>8} {:>8} {:>8} {:>10} {:>6}",
        "dataset", "|V|", "|E|", "seq mods", "dist mods", "NMI", "modeled t", "ranks"
    );
    for id in DatasetId::ALL {
        let profile = id.profile();
        let (graph, _) = profile.generate_scaled(scale, 1);
        let seq = Infomap::new(InfomapConfig::default()).run(&graph);
        let dist = DistributedInfomap::new(DistributedConfig {
            nranks,
            ..Default::default()
        })
        .run(&graph);
        let q = quality(&seq.modules, &dist.modules);
        let t = model.makespan(&dist.rank_stats).total;
        println!(
            "{:<14} {:>8} {:>9} {:>8} {:>8} {:>8.2} {:>9.1}ms {:>6}",
            profile.name,
            graph.num_vertices(),
            graph.num_edges(),
            seq.num_modules(),
            dist.num_modules(),
            q.nmi,
            t * 1e3,
            nranks
        );
    }
}
