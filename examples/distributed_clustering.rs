//! Distributed clustering in depth: run the paper's algorithm on a web-like
//! scale-free graph, watch the per-stage trace (MDL, merge rate, moves),
//! and model the run's cost on a cluster.
//!
//! ```text
//! cargo run --release --example distributed_clustering
//! ```

use distributed_infomap::prelude::*;

fn main() {
    // A stand-in for a web crawl: heavy-tailed degrees, strong communities.
    let (graph, _) = DatasetId::NdWeb.profile().generate_scaled(0.4, 3);
    println!(
        "ND-Web stand-in: {} vertices, {} edges, max degree {}\n",
        graph.num_vertices(),
        graph.num_edges(),
        graph.max_degree()
    );

    let out = DistributedInfomap::new(DistributedConfig {
        nranks: 16,
        ..Default::default()
    })
    .run(&graph);

    println!("stage trace:");
    println!(
        "  {:>5}  {:>5}  {:>12}  {:>8}  {:>8}  {:>7}  {:>6}",
        "stage", "level", "codelength", "before", "after", "rounds", "moves"
    );
    for t in &out.trace {
        println!(
            "  {:>5}  {:>5}  {:>12.4}  {:>8}  {:>8}  {:>7}  {:>6}",
            t.stage,
            t.level,
            t.codelength,
            t.vertices_before,
            t.vertices_after,
            t.inner_iterations,
            t.moves
        );
    }

    println!(
        "\nresult: {} modules, codelength {:.4} bits (one-level {:.4})",
        out.num_modules(),
        out.codelength,
        out.one_level_codelength
    );

    // Model what this run would cost on an MPI cluster: per-phase makespan
    // from the exact per-rank counters.
    let model = CostModel::default();
    let breakdown = model.makespan(&out.rank_stats);
    println!("\nmodeled cluster time per phase:");
    for (phase, secs) in &breakdown.phases {
        println!("  {phase:<24} {:>10.3} ms", secs * 1e3);
    }
    println!("  {:<24} {:>10.3} ms", "TOTAL", breakdown.total * 1e3);

    // Communication summary.
    let bytes: u64 = out.rank_stats.iter().map(|s| s.total.p2p_bytes_sent).sum();
    let msgs: u64 = out.rank_stats.iter().map(|s| s.total.p2p_msgs_sent).sum();
    println!("\ncommunication: {msgs} point-to-point messages, {bytes} bytes");
}
